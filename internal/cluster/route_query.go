package cluster

import (
	"cmp"
	"math"
	"slices"
	"sort"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Query scatter-gather. A client query is classified into per-shard
// sub-queries — fresh queries seed the relevant shards from their own roots,
// remainder queries split the handed-over priority queue H by the shard each
// reference decodes to — then issued in waves, merged, and re-keyed into the
// virtual namespace. Range queries touch only shards whose root rectangle
// meets the window; kNN asks the nearest shard for the full k first and then
// probes only shards whose distance lower bound beats the k-th best, with
// that distance as their pruning bound; joins broadcast to overlapping
// shards and add boundary-band candidate scans for cross-shard pairs.

// pairSide is one resolved end of a handed-over join pair element.
type pairSide struct {
	shard    int
	ref      query.Ref
	portable bool // object reference: routable to any shard
}

func (r *Router) routeQuery(req *wire.Request) (*wire.Response, error) {
	st := r.getState()
	defer r.putState(st)
	r.snapshotMeta(st)
	r.loadEpochBase(st, req)

	if len(req.H) == 0 {
		r.classifyFresh(st, req)
	} else {
		r.classifyH(st, req)
	}

	resp := r.acquireResponse()
	resp.K = req.Q.K
	var err error
	switch req.Q.Kind {
	case query.KNN:
		err = r.routeKNN(st, req, resp)
	case query.Join:
		err = r.routeJoin(st, req, resp)
	default: // Range and unknown kinds (which match nothing anywhere)
		err = r.routeRange(st, req, resp)
	}
	if err == nil && st.wantVroot && !req.NoIndex {
		err = r.appendVroot(st, resp)
	}
	if err != nil {
		r.releaseWave(st)
		r.ReleaseResponse(resp)
		return nil, err
	}
	if len(st.wave) == 1 {
		r.stats.SingleShard.Add(1)
	}
	// Parents before children: levels strictly decrease downward, and the
	// virtual root carries the highest level of all.
	slices.SortStableFunc(resp.Index, func(a, b wire.NodeRep) int {
		return cmp.Compare(b.Level, a.Level)
	})
	r.finishConsistency(st, req, resp)
	return resp, nil
}

// rangeRelevant reports whether a shard with the given root rectangle can
// contribute to a range request (window or semantic-remainder windows).
func rangeRelevant(mbr geom.Rect, req *wire.Request) bool {
	if len(req.SemWindows) > 0 {
		for _, w := range req.SemWindows {
			if w.Intersects(mbr) {
				return true
			}
		}
		return false
	}
	return req.Q.Window.Intersects(mbr)
}

// classifyFresh targets the shards a from-the-root query can touch.
func (r *Router) classifyFresh(st *routeState, req *wire.Request) {
	for s := range st.meta {
		if st.meta[s].id == rtree.InvalidNode {
			continue
		}
		switch req.Q.Kind {
		case query.KNN:
			st.selfSeed[s] = true
			st.minKey[s] = geom.MinDist(req.Q.Center, st.meta[s].mbr)
		case query.Join:
			if req.Q.JoinWindow.Intersects(st.meta[s].mbr) {
				st.selfSeed[s] = true
			}
		default:
			if rangeRelevant(st.meta[s].mbr, req) {
				st.selfSeed[s] = true
			}
		}
	}
	if req.Q.Kind == query.Join {
		for sa := range st.meta {
			if !st.selfSeed[sa] {
				continue
			}
			for sb := sa + 1; sb < st.nsh; sb++ {
				if !st.selfSeed[sb] {
					continue
				}
				r.addCrossTask(st, req,
					pairSide{shard: sa, ref: query.NodeRef(st.meta[sa].id, st.meta[sa].mbr)},
					pairSide{shard: sb, ref: query.NodeRef(st.meta[sb].id, st.meta[sb].mbr)})
			}
		}
	}
	for s := range st.meta {
		if st.selfSeed[s] {
			st.wantVroot = true
			break
		}
	}
}

// classifyH splits a handed-over priority queue by shard.
func (r *Router) classifyH(st *routeState, req *wire.Request) {
	for s := range st.minKey {
		st.minKey[s] = math.Inf(1)
	}
	for _, qe := range req.H {
		if qe.Elem.Pair {
			r.classifyPair(st, req, qe)
		} else {
			r.classifySingle(st, req, qe)
		}
	}
}

// appendSub adds one element to a shard's sub-queue, tracking the smallest
// kNN key handed to that shard.
func (st *routeState) appendSub(q query.Query, s int, qe query.QueuedElem) {
	st.subH[s] = append(st.subH[s], qe)
	if q.Kind == query.KNN {
		key := q.KeyFor(qe.Elem.A.MBR)
		if qe.Elem.Pair {
			key = q.PairKeyFor(qe.Elem.A.MBR, qe.Elem.B.MBR)
		}
		if key < st.minKey[s] {
			st.minKey[s] = key
		}
	}
}

// rootTargets reports the shards a virtual-root reference fans out to for
// this query kind.
func (r *Router) rootRelevant(st *routeState, req *wire.Request, s int) bool {
	if st.meta[s].id == rtree.InvalidNode {
		return false
	}
	switch req.Q.Kind {
	case query.KNN:
		return true
	case query.Join:
		return req.Q.JoinWindow.Intersects(st.meta[s].mbr)
	default:
		return rangeRelevant(st.meta[s].mbr, req)
	}
}

// classifySingle routes one non-pair element. Virtual-root references fan
// out to every relevant shard's own root; references outside the namespace
// are dropped, matching a single node's empty expansion of dangling refs.
func (r *Router) classifySingle(st *routeState, req *wire.Request, qe query.QueuedElem) {
	ref := qe.Elem.A
	switch {
	case ref.Kind == query.RefObject:
		s := r.part.LocateRect(ref.MBR)
		st.appendSub(req.Q, s, qe)
	case ref.Node == VirtualRoot:
		st.wantVroot = true
		for s := range st.meta {
			if r.rootRelevant(st, req, s) {
				st.appendSub(req.Q, s, query.QueuedElem{
					Elem: query.Single(query.NodeRef(st.meta[s].id, st.meta[s].mbr)),
				})
			}
		}
	default:
		if s, local, ok := splitVirtual(ref.Node, st.nsh); ok {
			if st.meta[s].id == rtree.InvalidNode {
				// The slot was merged away: its ids can never be expanded
				// again, so the ref drops like any dangling reference (the
				// client is being flushed in this same response — a merge
				// flushes the whole epoch table).
				return
			}
			lr := ref
			lr.Node = local
			st.appendSub(req.Q, s, query.QueuedElem{Elem: query.Single(lr), Deferred: qe.Deferred})
		}
	}
}

// pairSides resolves one end of a pair element into shard-local sides.
func (r *Router) pairSides(st *routeState, req *wire.Request, ref query.Ref, dst []pairSide) []pairSide {
	switch {
	case ref.Kind == query.RefObject:
		return append(dst, pairSide{shard: r.part.LocateRect(ref.MBR), ref: ref, portable: true})
	case ref.Node == VirtualRoot:
		st.wantVroot = true
		for s := range st.meta {
			if r.rootRelevant(st, req, s) {
				dst = append(dst, pairSide{shard: s, ref: query.NodeRef(st.meta[s].id, st.meta[s].mbr)})
			}
		}
		return dst
	default:
		if s, local, ok := splitVirtual(ref.Node, st.nsh); ok {
			if st.meta[s].id == rtree.InvalidNode {
				return dst // merged-away slot: dangling ref, drop
			}
			lr := ref
			lr.Node = local
			dst = append(dst, pairSide{shard: s, ref: lr})
		}
		return dst
	}
}

// classifyPair routes one join pair element: same-shard (or object-bearing)
// combinations become shard-local pairs, node pairs straddling two shards
// become cross-shard candidate scans.
func (r *Router) classifyPair(st *routeState, req *wire.Request, qe query.QueuedElem) {
	st.sideA = r.pairSides(st, req, qe.Elem.A, st.sideA[:0])
	st.sideB = r.pairSides(st, req, qe.Elem.B, st.sideB[:0])
	for _, a := range st.sideA {
		for _, b := range st.sideB {
			switch {
			case a.portable && b.portable:
				st.appendSub(req.Q, a.shard, query.QueuedElem{
					Elem: query.PairOf(a.ref, b.ref), Deferred: qe.Deferred,
				})
			case a.portable:
				st.appendSub(req.Q, b.shard, query.QueuedElem{
					Elem: query.PairOf(a.ref, b.ref), Deferred: qe.Deferred,
				})
			case b.portable || a.shard == b.shard:
				st.appendSub(req.Q, a.shard, query.QueuedElem{
					Elem: query.PairOf(a.ref, b.ref), Deferred: qe.Deferred,
				})
			default:
				r.addCrossTask(st, req, a, b)
			}
		}
	}
}

// addCrossTask records a deduplicated cross-shard candidate scan.
func (r *Router) addCrossTask(st *routeState, req *wire.Request, a, b pairSide) {
	if b.shard < a.shard {
		a, b = b, a
	}
	for _, t := range st.cross {
		if t.sa == a.shard && t.sb == b.shard && t.a.Same(a.ref) && t.b.Same(b.ref) {
			return
		}
	}
	st.cross = append(st.cross, crossTask{sa: a.shard, sb: b.shard, a: a.ref, b: b.ref})
	r.stats.CrossPairTasks.Add(1)
}

// primaryItems appends one wave item per targeted shard, carrying the
// shard's H split (or nothing, for root-seeded shards) plus the client's
// pass-through fields, then catalog piggybacks for every lagging shard the
// query skips.
func (st *routeState) primaryItems(req *wire.Request) {
	for s := 0; s < st.nsh; s++ {
		if !st.selfSeed[s] && len(st.subH[s]) == 0 {
			continue
		}
		st.wave = append(st.wave, waveItem{shard: s, task: -1})
		it := &st.wave[len(st.wave)-1]
		it.req = wire.Request{
			Client:     req.Client,
			Q:          req.Q,
			CachedIDs:  req.CachedIDs,
			SemWindows: req.SemWindows,
			NoIndex:    req.NoIndex,
			Epoch:      st.baseVec[s],
			FMR:        req.FMR,
			HasFMR:     req.HasFMR,
		}
		if !st.selfSeed[s] {
			it.req.H = st.subH[s]
		}
	}
	st.appendLagCatalogs(req, func(s int) bool { return st.selfSeed[s] || len(st.subH[s]) > 0 })
}

// appendLagCatalogs adds a catalog sub-request for every shard the request
// does not otherwise touch but whose known epoch is ahead of the client's
// coverage. A single-node response always carries the client's *full*
// invalidation window; without this, a client querying only one region
// could keep a stale cut of another shard forever — the stale cut prunes
// the region, so no query ever reaches the shard that would invalidate it.
// In the no-update steady state nothing lags, so the single-shard fast
// path is untouched.
func (st *routeState) appendLagCatalogs(req *wire.Request, targeted func(s int) bool) {
	for s := 0; s < st.nsh; s++ {
		if targeted(s) || st.meta[s].epoch <= st.baseVec[s] {
			continue
		}
		st.wave = append(st.wave, waveItem{shard: s, task: -1})
		it := &st.wave[len(st.wave)-1]
		it.req = wire.Request{Client: req.Client, Catalog: true, Epoch: st.baseVec[s]}
	}
}

// mergeObjects deduplicates a sub-response's result objects into the
// merged response.
func (st *routeState) mergeObjects(sub *wire.Response, resp *wire.Response) {
	for _, o := range sub.Objects {
		if !st.seenObj[o.ID] {
			st.seenObj[o.ID] = true
			resp.Objects = append(resp.Objects, o)
		}
	}
}

// routeRange scatters a range (or semantic-remainder) query to overlapping
// shards and merges object sets, sorted by id for determinism.
func (r *Router) routeRange(st *routeState, req *wire.Request, resp *wire.Response) error {
	st.primaryItems(req)
	if len(st.wave) == 0 {
		return nil
	}
	if err := r.issueWave(st.wave); err != nil {
		return err
	}
	for i := range st.wave {
		it := &st.wave[i]
		if err := r.absorb(st, it.shard, it.resp, resp); err != nil {
			return err
		}
		st.mergeObjects(it.resp, resp)
		if !req.NoIndex {
			if err := r.mergeIndex(st, it.shard, it.resp, resp); err != nil {
				return err
			}
		}
		r.release(it.shard, it.resp)
		it.resp = nil
	}
	slices.SortFunc(resp.Objects, func(a, b wire.ObjectRep) int { return cmp.Compare(a.ID, b.ID) })
	return nil
}

// knnMerge sorts the gathered kNN candidates by (distance, id).
type knnMerge routeState

func (m *knnMerge) Len() int { return len(m.knnObjs) }
func (m *knnMerge) Less(i, j int) bool {
	if m.knnDists[i] != m.knnDists[j] {
		return m.knnDists[i] < m.knnDists[j]
	}
	return m.knnObjs[i].ID < m.knnObjs[j].ID
}
func (m *knnMerge) Swap(i, j int) {
	m.knnObjs[i], m.knnObjs[j] = m.knnObjs[j], m.knnObjs[i]
	m.knnDists[i], m.knnDists[j] = m.knnDists[j], m.knnDists[i]
}

// appendKNN adds one full-k kNN sub-query for shard s. A positive bound is
// the router's current global k-th-best distance, shipped as the shard's
// pruning bound (wire.Request.Bound); probe items are counted as re-issues
// in the router stats.
func (st *routeState) appendKNN(req *wire.Request, s int, bound float64) {
	st.wave = append(st.wave, waveItem{shard: s, task: -1, reissue: bound > 0})
	it := &st.wave[len(st.wave)-1]
	it.req = wire.Request{
		Client:    req.Client,
		Q:         req.Q,
		CachedIDs: req.CachedIDs,
		NoIndex:   req.NoIndex,
		Epoch:     st.baseVec[s],
		FMR:       req.FMR,
		HasFMR:    req.HasFMR,
	}
	if !st.selfSeed[s] {
		it.req.H = st.subH[s]
	}
	if bound > 0 && !math.IsInf(bound, 1) {
		it.req.Bound = bound
	}
}

// knnDK sorts the gathered candidates and returns the current global
// k-th-best distance (infinite while fewer than k candidates are known).
func (st *routeState) knnDK(k int) float64 {
	sort.Sort((*knnMerge)(st))
	if len(st.knnObjs) >= k {
		return st.knnDists[k-1]
	}
	return math.Inf(1)
}

// absorbKNN merges one wave of kNN sub-responses: consistency payloads for
// every item, result candidates and index merging for the query items.
func (r *Router) absorbKNN(st *routeState, req *wire.Request, resp *wire.Response, wave []waveItem) error {
	for i := range wave {
		it := &wave[i]
		if err := r.absorb(st, it.shard, it.resp, resp); err != nil {
			return err
		}
		if !it.req.Catalog { // lag piggybacks carry consistency only
			for _, o := range it.resp.Objects {
				if !st.seenObj[o.ID] {
					st.seenObj[o.ID] = true
					st.knnObjs = append(st.knnObjs, o)
					st.knnDists = append(st.knnDists, req.Q.KeyFor(o.MBR))
				}
			}
			if !req.NoIndex {
				if err := r.mergeIndex(st, it.shard, it.resp, resp); err != nil {
					return err
				}
			}
		}
		r.release(it.shard, it.resp)
		it.resp = nil
	}
	return nil
}

// routeKNN is a primary-first scatter: the shard with the smallest distance
// lower bound answers the full k alone (inline, no fan-out), its k-th-best
// distance dk caps what any other shard could contribute, and only shards
// whose lower bound beats dk are probed — at full k, with dk as their
// pruning bound, so a second wave always suffices (a top-k merge takes at
// most k objects from any one shard). Under a uniform distribution dk is
// usually inside the primary shard's region, every other shard's bound
// exceeds it, and a multi-shard kNN costs exactly one single-shard
// sub-query.
func (r *Router) routeKNN(st *routeState, req *wire.Request, resp *wire.Response) error {
	k := req.Q.K
	if k <= 0 {
		return nil
	}
	// Candidate shards and their distance lower bounds.
	ncand, primary := 0, -1
	for s := 0; s < st.nsh; s++ {
		if !st.selfSeed[s] && len(st.subH[s]) == 0 {
			st.knnLower[s] = math.Inf(1)
			continue
		}
		if st.selfSeed[s] {
			st.minKey[s] = geom.MinDist(req.Q.Center, st.meta[s].mbr)
		}
		st.knnLower[s] = st.minKey[s]
		ncand++
		if primary < 0 || st.knnLower[s] < st.knnLower[primary] {
			primary = s
		}
	}
	if ncand == 0 {
		return nil
	}

	// Wave 1: the primary shard alone, full k.
	st.appendKNN(req, primary, 0)
	if err := r.issueWave(st.wave); err != nil {
		return err
	}
	if err := r.absorbKNN(st, req, resp, st.wave); err != nil {
		return err
	}
	dk := st.knnDK(k)

	// Wave 2: shards whose nearest possible object still beats the current
	// k-th best, plus catalog piggybacks for lagging shards the query now
	// skips entirely (their pending invalidations must still reach the
	// client). Ties at exactly dk stay with the already-gathered candidates,
	// matching the merge order's (distance, id) tie-break contract.
	waveStart := len(st.wave)
	for s := 0; s < st.nsh; s++ {
		if s == primary || st.knnLower[s] >= dk {
			continue
		}
		st.appendKNN(req, s, dk)
	}
	st.appendLagCatalogs(req, func(s int) bool {
		return s == primary || st.knnLower[s] < dk
	})
	if wave := st.wave[waveStart:]; len(wave) > 0 {
		if err := r.issueWave(wave); err != nil {
			return err
		}
		if err := r.absorbKNN(st, req, resp, wave); err != nil {
			return err
		}
		sort.Sort((*knnMerge)(st))
	}

	n := min(k, len(st.knnObjs))
	resp.Objects = append(resp.Objects, st.knnObjs[:n]...)
	return nil
}

// inflate grows a rectangle by d on every side.
func inflate(rc geom.Rect, d float64) geom.Rect {
	return geom.Rect{MinX: rc.MinX - d, MinY: rc.MinY - d, MaxX: rc.MaxX + d, MaxY: rc.MaxY + d}
}

// routeJoin broadcasts the self-join to overlapping shards for intra-shard
// pairs and runs boundary-band candidate scans for every cross-shard task:
// side A collects the objects beneath its reference within distance reach
// of side B's rectangle (clipped to the join window) and vice versa, then
// the router pairs candidates with the exact join predicate.
func (r *Router) routeJoin(st *routeState, req *wire.Request, resp *wire.Response) error {
	st.primaryItems(req)
	nPrimary := len(st.wave)

	for ti := range st.cross {
		t := &st.cross[ti]
		wa, okA := inflate(t.b.MBR, req.Q.Dist).Intersection(req.Q.JoinWindow)
		wb, okB := inflate(t.a.MBR, req.Q.Dist).Intersection(req.Q.JoinWindow)
		if !okA || !okB {
			continue // the bands cannot meet: no cross pairs possible
		}
		for side, w := range [2]geom.Rect{wa, wb} {
			sh, ref := t.sa, t.a
			if side == 1 {
				sh, ref = t.sb, t.b
			}
			st.wave = append(st.wave, waveItem{shard: sh, task: ti, side: side})
			it := &st.wave[len(st.wave)-1]
			it.req = wire.Request{
				Client:    req.Client,
				Q:         query.NewRange(w),
				CachedIDs: req.CachedIDs,
				NoIndex:   req.NoIndex,
				Epoch:     st.baseVec[sh],
				H:         []query.QueuedElem{{Elem: query.Single(ref)}},
			}
		}
	}
	if len(st.wave) == 0 {
		return nil
	}
	if err := r.issueWave(st.wave); err != nil {
		return err
	}
	for i := range st.wave {
		it := &st.wave[i]
		if err := r.absorb(st, it.shard, it.resp, resp); err != nil {
			return err
		}
		if !req.NoIndex {
			if err := r.mergeIndex(st, it.shard, it.resp, resp); err != nil {
				return err
			}
		}
		if i < nPrimary {
			st.mergeObjects(it.resp, resp)
			for _, p := range it.resp.Pairs {
				st.appendPair(resp, p)
			}
		} else {
			t := &st.cross[it.task]
			cands := append([]wire.ObjectRep(nil), it.resp.Objects...)
			if it.side == 0 {
				t.candsA, t.haveA = cands, true
			} else {
				t.candsB, t.haveB = cands, true
			}
		}
		r.release(it.shard, it.resp)
		it.resp = nil
	}

	// Pair band candidates with the exact join predicate.
	for ti := range st.cross {
		t := &st.cross[ti]
		if !t.haveA || !t.haveB {
			continue
		}
		for _, a := range t.candsA {
			for _, b := range t.candsB {
				if a.ID == b.ID || geom.RectMinDist(a.MBR, b.MBR) > req.Q.Dist {
					continue
				}
				p := [2]rtree.ObjectID{a.ID, b.ID}
				if p[1] < p[0] {
					p[0], p[1] = p[1], p[0]
				}
				if !st.appendPair(resp, p) {
					continue
				}
				for _, o := range [2]wire.ObjectRep{a, b} {
					if !st.seenObj[o.ID] {
						st.seenObj[o.ID] = true
						resp.Objects = append(resp.Objects, o)
					}
				}
			}
		}
	}

	slices.SortFunc(resp.Objects, func(a, b wire.ObjectRep) int { return cmp.Compare(a.ID, b.ID) })
	slices.SortFunc(resp.Pairs, func(a, b [2]rtree.ObjectID) int {
		if c := cmp.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return cmp.Compare(a[1], b[1])
	})
	return nil
}

// appendPair deduplicates one canonical join pair into the response,
// reporting whether it was new.
func (st *routeState) appendPair(resp *wire.Response, p [2]rtree.ObjectID) bool {
	if st.seenPair[p] {
		return false
	}
	st.seenPair[p] = true
	resp.Pairs = append(resp.Pairs, p)
	return true
}
