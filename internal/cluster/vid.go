package cluster

import "repro/internal/rtree"

// Virtual node namespace. Shard-local NodeIDs are re-keyed arithmetically
// into the client-visible namespace: the shard ordinal (plus one) lives in
// the high bits, the shard-local id in the low bits. The mapping is a pure
// bit split — no per-node table, no per-client state — which is the whole
// "re-key table" memory model: O(1) (docs/CLUSTER.md discusses the
// trade-off against table-based re-keying).
//
// NodeID is 32 bits, so the split caps a cluster at MaxShards shards of
// MaxLocalNodes index pages each (255 x ~16.7M pages ≈ 4 billion entries at
// the paper's page size — far past the single-process datasets this layer
// targets). The virtual root and every id below 1<<shardShift are reserved;
// shard-local ids never reach them because shard ordinals start at 0 and
// (shard+1)<<shardShift is always set.

const (
	// shardShift is where the shard ordinal starts inside a virtual NodeID.
	shardShift = 24
	// localMask extracts the shard-local id from a virtual NodeID.
	localMask = 1<<shardShift - 1
	// MaxShards is the largest shard count the virtual namespace can hold.
	MaxShards = 255
	// MaxLocalNodes is the largest shard-local NodeID the namespace can
	// re-key. A shard that grows past it (snapshot arenas never reuse ids)
	// fails loudly at re-key time rather than aliasing another shard.
	MaxLocalNodes = 1<<shardShift - 1
)

// VirtualRoot is the NodeID of the cluster's synthesized root node: the one
// index node the router owns, whose entries are the shard roots. It lives
// below every re-keyed id, so it can never collide.
const VirtualRoot rtree.NodeID = 1

// virtualNode re-keys a shard-local node id into the virtual namespace.
// ok is false when the local id exceeds MaxLocalNodes.
func virtualNode(shard int, local rtree.NodeID) (rtree.NodeID, bool) {
	if local > MaxLocalNodes {
		return rtree.InvalidNode, false
	}
	if local == rtree.InvalidNode {
		return rtree.InvalidNode, true
	}
	return rtree.NodeID(shard+1)<<shardShift | local, true
}

// splitVirtual decodes a virtual node id back into (shard ordinal, local
// id). ok is false for ids outside the namespace: the virtual root, the
// reserved low range, and shard ordinals past the cluster size.
func splitVirtual(v rtree.NodeID, shards int) (shard int, local rtree.NodeID, ok bool) {
	s := int(v>>shardShift) - 1
	if s < 0 || s >= shards {
		return 0, rtree.InvalidNode, false
	}
	local = v & localMask
	if local == rtree.InvalidNode {
		return 0, rtree.InvalidNode, false
	}
	return s, local, true
}
