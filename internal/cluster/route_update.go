package cluster

import (
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Update routing. Every operation goes to the shard owning the rectangle
// that identifies it: inserts to the owner of the new rectangle, deletes
// and in-shard moves to the owner of the current one. A move whose target
// center falls in another shard's region re-partitions the object — a
// delete on the old owner followed, only if the delete matched, by an
// insert on the new owner (carrying the payload size the router learned
// from the object's original insert, or from Config.Sizer for build-time
// objects). The ownership invariant — an object lives on the shard owning
// its current center — therefore survives arbitrary movement.
//
// Operations bound for one shard ship as one sub-batch, preserving their
// relative order, and the per-operation acks scatter back into the
// request's original order. Single-node order semantics are preserved even
// across re-partitioning: a batch is cut into sequential chunks at every
// operation that touches an object whose cross-shard re-insert is still
// pending, so "move across the boundary, then move again" applies exactly
// as it would on one server. A feed that touches each object once per
// batch (every real feed) routes in a single chunk.

// opRoute remembers where one client operation went.
type opRoute struct {
	shard int // first-phase shard
	idx   int // index within that shard's sub-batch
	cross bool
	to    int // cross move: inserting shard
}

func (r *Router) routeUpdates(req *wire.Request) (*wire.Response, error) {
	st := r.getState()
	defer r.putState(st)
	r.snapshotMeta(st)
	r.loadEpochBase(st, req)

	resp := r.acquireResponse()
	results := make([]bool, len(req.Updates))

	pending := make(map[rtree.ObjectID]bool)
	start := 0
	for start < len(req.Updates) {
		end := start
		for end < len(req.Updates) {
			op := req.Updates[end]
			if pending[op.Obj] {
				break // order hazard: finish the pending re-insert first
			}
			if op.Kind == wire.UpdateMove && r.part.LocateRect(op.From) != r.part.LocateRect(op.To) {
				pending[op.Obj] = true
			}
			end++
		}
		if err := r.applyChunk(st, req, resp, req.Updates[start:end], results[start:end]); err != nil {
			r.ReleaseResponse(resp)
			return nil, err
		}
		clear(pending)
		start = end
	}

	// Update acks carry the client's full invalidation window too (the
	// single-node ExecuteUpdates contract): catalog any lagging shard the
	// batch did not touch.
	waveStart := len(st.wave)
	st.appendLagCatalogs(req, func(s int) bool { return st.queried[s] })
	wave := st.wave[waveStart:]
	if len(wave) > 0 {
		if err := r.issueWave(wave); err != nil {
			r.ReleaseResponse(resp)
			return nil, err
		}
		for i := range wave {
			it := &wave[i]
			if err := r.absorb(st, it.shard, it.resp, resp); err != nil {
				r.releaseWave(st)
				r.ReleaseResponse(resp)
				return nil, err
			}
			r.release(it.shard, it.resp)
			it.resp = nil
		}
	}

	resp.UpdateResults = append(resp.UpdateResults[:0], results...)
	r.finishConsistency(st, req, resp)
	return resp, nil
}

// applyChunk routes one dependency-free run of operations: phase one ships
// per-shard sub-batches (cross-shard moves travel as deletes), phase two
// re-inserts the successfully deleted movers on their new owners.
func (r *Router) applyChunk(st *routeState, req *wire.Request, resp *wire.Response, ops []wire.UpdateOp, results []bool) error {
	routes := make([]opRoute, len(ops))
	subOps := make([][]wire.UpdateOp, st.nsh)
	for i, op := range ops {
		rt := opRoute{to: -1}
		switch op.Kind {
		case wire.UpdateInsert:
			rt.shard = r.part.LocateRect(op.To)
			sz := op.Size
			if sz < 0 {
				sz = 0
			}
			r.wireSizes.Store(op.Obj, sz)
		case wire.UpdateMove:
			rt.shard = r.part.LocateRect(op.From)
			if to := r.part.LocateRect(op.To); to != rt.shard {
				rt.cross, rt.to = true, to
				op = wire.UpdateOp{Kind: wire.UpdateDelete, Obj: op.Obj, From: op.From}
			}
		default: // UpdateDelete and unknown kinds (shards reject the latter)
			rt.shard = r.part.LocateRect(op.From)
		}
		rt.idx = len(subOps[rt.shard])
		subOps[rt.shard] = append(subOps[rt.shard], op)
		routes[i] = rt
	}

	phase, err := r.updatePhase(st, req, resp, subOps)
	if err != nil {
		return err
	}

	// Phase two: cross-shard re-inserts for the moves whose delete matched.
	var crossOps [][]wire.UpdateOp
	for i, rt := range routes {
		if !rt.cross || !phase[rt.shard][rt.idx] {
			continue
		}
		if crossOps == nil {
			crossOps = make([][]wire.UpdateOp, st.nsh)
		}
		op := ops[i]
		crossOps[rt.to] = append(crossOps[rt.to], wire.UpdateOp{
			Kind: wire.UpdateInsert,
			Obj:  op.Obj,
			To:   op.To,
			Size: r.sizeOf(op.Obj),
		})
	}
	if crossOps != nil {
		phase2, err := r.updatePhase(st, req, resp, crossOps)
		if err != nil {
			return err
		}
		for s2 := range phase2 {
			for _, acked := range phase2[s2] {
				if acked {
					r.stats.Shard(s2).Objects.Add(1)
				}
			}
		}
	}

	for i, rt := range routes {
		results[i] = phase[rt.shard][rt.idx]
		if !results[i] {
			continue
		}
		// Maintain the per-shard object-count gauges the rebalancer
		// triggers on: inserts and deletes move the owner's count, and a
		// cross-shard move decrements here with the re-insert counted in
		// phase two above.
		switch ops[i].Kind {
		case wire.UpdateInsert:
			r.stats.Shard(rt.shard).Objects.Add(1)
		case wire.UpdateDelete:
			r.stats.Shard(rt.shard).Objects.Add(-1)
			// An acked delete retires the object: drop its learned payload
			// size so insert/delete churn cannot grow the overlay forever.
			r.wireSizes.Delete(ops[i].Obj)
		case wire.UpdateMove:
			if rt.cross {
				r.stats.Shard(rt.shard).Objects.Add(-1)
			}
		}
	}
	return nil
}

// updatePhase ships one sub-batch per shard with operations queued for it,
// absorbs the acks (epochs, roots, invalidation fan-in), and returns the
// per-shard result vectors.
func (r *Router) updatePhase(st *routeState, req *wire.Request, resp *wire.Response, subOps [][]wire.UpdateOp) ([][]bool, error) {
	waveStart := len(st.wave)
	for s, ops := range subOps {
		if len(ops) == 0 {
			continue
		}
		st.wave = append(st.wave, waveItem{shard: s, task: -1})
		it := &st.wave[len(st.wave)-1]
		it.req = wire.Request{
			Client:  req.Client,
			Epoch:   st.baseVec[s],
			Updates: ops,
		}
	}
	wave := st.wave[waveStart:]
	if err := r.issueWave(wave); err != nil {
		return nil, err
	}
	results := make([][]bool, st.nsh)
	for i := range wave {
		it := &wave[i]
		if err := r.absorb(st, it.shard, it.resp, resp); err != nil {
			r.releaseWave(st)
			return nil, err
		}
		results[it.shard] = append([]bool(nil), it.resp.UpdateResults...)
		r.release(it.shard, it.resp)
		it.resp = nil
	}
	return results, nil
}
