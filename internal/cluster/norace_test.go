//go:build !race

package cluster

// raceEnabled reports that the race detector instruments this build.
const raceEnabled = false
