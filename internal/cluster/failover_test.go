package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wal"
	"repro/internal/wire"
)

// The failover contract: a shard can die mid-stream and the cluster's
// answers stay exactly what a single-node server would produce — recovered
// from WAL + checkpoint after a crash-restart, or served by the promoted
// warm replica when the primary never comes back. These tests drive the
// same randomized update stream as the equivalence suite and kill shards
// while it flows.

// crashConfig is the chaos-tuned cluster: durability on, sync off (tests),
// small checkpoints so the writer checkpoints mid-stream, and a hair
// trigger on failover so a killed shard redials within one sub-query.
func crashConfig(t *testing.T, sizes map[rtree.ObjectID]int, replicas bool) InProcessConfig {
	return InProcessConfig{
		Shards:        4,
		Tree:          rtree.Params{MaxEntries: testMaxEntries},
		Sizer:         func(id rtree.ObjectID) int { return sizes[id] },
		WALDir:        t.TempDir(),
		WAL:           wal.Options{NoSync: true, CheckpointBytes: 8 << 10},
		Replicas:      replicas,
		RetryAttempts: 3,
		RetryBackoff:  1,
		FailThreshold: 1,
	}
}

// TestClusterEquivalenceCrashRecovery SIGKILLs (in effect) one shard per
// round in the middle of the update stream, restarts it from its WAL, and
// requires every subsequent query and update ack to match the single-node
// server byte for byte — the restored shard must resume with the identical
// arena or the comparisons diverge.
func TestClusterEquivalenceCrashRecovery(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			nObj := 2000
			if testing.Short() {
				nObj = 600
			}
			objs := genObjects(nObj, seed)
			sizes := make(map[rtree.ObjectID]int, len(objs))
			for _, o := range objs {
				sizes[o.ID] = o.Size
			}
			single := buildServer(objs, sizes)
			defer single.Close()
			p, err := NewInProcess(objs, crashConfig(t, sizes, false))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			router := p.Router

			rng := rand.New(rand.NewSource(seed * 77))
			upd := newUpdateStream(seed*31, objs)
			for round := 0; round < 6; round++ {
				ops := upd.batch(40)
				sResp := single.ExecuteUpdates(&wire.Request{Client: 900, Updates: ops})
				cResp, err := router.RoundTrip(&wire.Request{Client: 900, Updates: ops})
				if err != nil {
					t.Fatalf("round %d: cluster updates: %v", round, err)
				}
				for i := range sResp.UpdateResults {
					if sResp.UpdateResults[i] != cResp.UpdateResults[i] {
						t.Fatalf("round %d: op %d ack %v, want %v",
							round, i, cResp.UpdateResults[i], sResp.UpdateResults[i])
					}
				}

				// Crash-restart a different shard each round, mid-history.
				victim := round % 4
				p.Kill(victim)
				if err := p.Restart(victim); err != nil {
					t.Fatalf("round %d: restart shard %d: %v", round, victim, err)
				}

				for qi := 0; qi < 12; qi++ {
					c := geom.Pt(rng.Float64(), rng.Float64())
					var q query.Query
					switch qi % 3 {
					case 0:
						q = query.NewRange(geom.RectFromCenter(c, 0.02+rng.Float64()*0.25, 0.02+rng.Float64()*0.25))
					case 1:
						q = query.NewKNN(c, 1+rng.Intn(16))
					default:
						q = query.NewJoin(geom.RectFromCenter(c, 0.1+rng.Float64()*0.2, 0.1+rng.Float64()*0.2), 0.002+rng.Float64()*0.01)
					}
					tag := fmt.Sprintf("round %d query %d (%s)", round, qi, q.Kind)
					sResp, _ := single.Execute(&wire.Request{Client: wire.ClientID(qi + 1), Q: q})
					cResp, err := router.RoundTrip(&wire.Request{Client: wire.ClientID(qi + 1), Q: q})
					if err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
					switch q.Kind {
					case query.Range:
						compareRange(t, tag, sResp, cResp)
					case query.KNN:
						compareKNN(t, tag, q, sResp, cResp)
					default:
						compareJoin(t, tag, sResp, cResp)
					}
				}
			}
			snap := router.Stats().Snapshot()
			if snap.Redials() == 0 {
				t.Fatal("no redials counted despite six crash-restarts")
			}
			if snap.Failovers() != 0 {
				t.Fatalf("replica promotions counted (%d) in a replica-less cluster", snap.Failovers())
			}
		})
	}
}

// TestClusterReplicaFailover kills a primary that never comes back: the
// router promotes the warm standby, queries keep answering with zero
// errors, results still match the single-node server (the standby applied
// every acked batch before the kill), and post-failover updates land on the
// replica so the equivalence keeps holding.
func TestClusterReplicaFailover(t *testing.T) {
	objs := genObjects(1500, 9)
	sizes := make(map[rtree.ObjectID]int, len(objs))
	for _, o := range objs {
		sizes[o.ID] = o.Size
	}
	single := buildServer(objs, sizes)
	defer single.Close()
	p, err := NewInProcess(objs, crashConfig(t, sizes, true))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	router := p.Router

	upd := newUpdateStream(13, objs)
	for round := 0; round < 3; round++ {
		ops := upd.batch(40)
		single.ExecuteUpdates(&wire.Request{Client: 900, Updates: ops})
		if _, err := router.RoundTrip(&wire.Request{Client: 900, Updates: ops}); err != nil {
			t.Fatalf("round %d updates: %v", round, err)
		}
	}

	p.Kill(2) // never restarted: the replica is the only way forward

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		if i == 10 {
			// Updates after the promotion land on the replica.
			ops := upd.batch(30)
			single.ExecuteUpdates(&wire.Request{Client: 900, Updates: ops})
			if _, err := router.RoundTrip(&wire.Request{Client: 900, Updates: ops}); err != nil {
				t.Fatalf("post-failover updates: %v", err)
			}
		}
		c := geom.Pt(rng.Float64(), rng.Float64())
		q := query.NewRange(geom.RectFromCenter(c, 0.05+rng.Float64()*0.3, 0.05+rng.Float64()*0.3))
		tag := fmt.Sprintf("query %d", i)
		sResp, _ := single.Execute(&wire.Request{Client: wire.ClientID(i + 1), Q: q})
		cResp, err := router.RoundTrip(&wire.Request{Client: wire.ClientID(i + 1), Q: q})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		compareRange(t, tag, sResp, cResp)
	}
	snap := router.Stats().Snapshot()
	if snap.Failovers() == 0 {
		t.Fatal("no replica promotion counted")
	}
	if got := snap.PerShard[2].Failovers; got != 1 {
		t.Fatalf("shard 2 failovers = %d, want 1", got)
	}
}

// TestInProcessReopenFromWAL pins the cold-restart story (prodb stopped and
// started over the same -wal directory): NewInProcess over a WAL dir that
// already holds history must restore every shard — primary and standby alike
// — from its checkpoint + tail rather than re-bulk-loading the dataset and
// refusing to write an epoch-0 checkpoint behind the log's end. The reopened
// cluster keeps matching the single-node twin, keeps accepting updates at
// the resumed epochs, and can still promote its (restored) standbys.
func TestInProcessReopenFromWAL(t *testing.T) {
	objs := genObjects(1200, 17)
	sizes := make(map[rtree.ObjectID]int, len(objs))
	for _, o := range objs {
		sizes[o.ID] = o.Size
	}
	single := buildServer(objs, sizes)
	defer single.Close()
	cfg := crashConfig(t, sizes, true) // one WALDir, reused across both boots

	p1, err := NewInProcess(objs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	upd := newUpdateStream(29, objs)
	for round := 0; round < 4; round++ {
		ops := upd.batch(50)
		single.ExecuteUpdates(&wire.Request{Client: 900, Updates: ops})
		if _, err := p1.Router.RoundTrip(&wire.Request{Client: 900, Updates: ops}); err != nil {
			t.Fatalf("round %d updates: %v", round, err)
		}
	}
	p1.Close()

	p2, err := NewInProcess(objs, cfg)
	if err != nil {
		t.Fatalf("reopen over existing WALs: %v", err)
	}
	defer p2.Close()

	// The restored shards must answer like the uninterrupted single node and
	// accept new updates at the resumed epochs (acks compared op for op).
	ops := upd.batch(40)
	sResp := single.ExecuteUpdates(&wire.Request{Client: 900, Updates: ops})
	cResp, err := p2.Router.RoundTrip(&wire.Request{Client: 900, Updates: ops})
	if err != nil {
		t.Fatalf("post-reopen updates: %v", err)
	}
	for i := range sResp.UpdateResults {
		if sResp.UpdateResults[i] != cResp.UpdateResults[i] {
			t.Fatalf("post-reopen op %d ack %v, want %v", i, cResp.UpdateResults[i], sResp.UpdateResults[i])
		}
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 12; i++ {
		c := geom.Pt(rng.Float64(), rng.Float64())
		q := query.NewRange(geom.RectFromCenter(c, 0.05+rng.Float64()*0.3, 0.05+rng.Float64()*0.3))
		tag := fmt.Sprintf("post-reopen query %d", i)
		sResp, _ := single.Execute(&wire.Request{Client: wire.ClientID(i + 1), Q: q})
		cResp, err := p2.Router.RoundTrip(&wire.Request{Client: wire.ClientID(i + 1), Q: q})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		compareRange(t, tag, sResp, cResp)
	}

	// The standbys were restored from the same checkpoint + tail, so a
	// primary killed after the reopen still promotes cleanly.
	p2.Kill(1)
	for i := 0; i < 8; i++ {
		c := geom.Pt(rng.Float64(), rng.Float64())
		q := query.NewRange(geom.RectFromCenter(c, 0.05+rng.Float64()*0.3, 0.05+rng.Float64()*0.3))
		tag := fmt.Sprintf("post-kill query %d", i)
		sResp, _ := single.Execute(&wire.Request{Client: wire.ClientID(i + 20), Q: q})
		cResp, err := p2.Router.RoundTrip(&wire.Request{Client: wire.ClientID(i + 20), Q: q})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		compareRange(t, tag, sResp, cResp)
	}
	if p2.Router.Stats().Snapshot().Failovers() == 0 {
		t.Fatal("no replica promotion counted after the reopen")
	}
}

// TestClusterFailoverFlushesClients checks the consistency seam of a
// promotion: a client holding a pre-failover virtual epoch is told to drop
// its cache (FlushAll) rather than being fed invalidation windows the
// promoted standby cannot vouch for.
func TestClusterFailoverFlushesClients(t *testing.T) {
	objs := genObjects(800, 21)
	sizes := make(map[rtree.ObjectID]int, len(objs))
	for _, o := range objs {
		sizes[o.ID] = o.Size
	}
	p, err := NewInProcess(objs, crashConfig(t, sizes, true))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	router := p.Router

	upd := newUpdateStream(4, objs)
	if _, err := router.RoundTrip(&wire.Request{Client: 900, Updates: upd.batch(30)}); err != nil {
		t.Fatal(err)
	}
	q := query.NewRange(geom.R(0, 0, 1, 1))
	resp, err := router.RoundTrip(&wire.Request{Client: 7, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	base := resp.Epoch
	if base == 0 {
		t.Fatal("no virtual epoch established before the failover")
	}

	p.Kill(1)
	resp, err = router.RoundTrip(&wire.Request{Client: 7, Epoch: base, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.FlushAll {
		t.Fatal("pre-failover epoch answered without FlushAll after replica promotion")
	}
}

// TestEpochTableFlushAll pins the generation fencing: a flush drops every
// client, and a commit that resolved its base before the flush is refused.
func TestEpochTableFlushAll(t *testing.T) {
	tab := newEpochTable(2, 4, 0)
	gen := tab.generation()
	v, ok := tab.commit(1, 0, []uint64{3, 1}, []rtree.NodeID{1, 1}, gen)
	if !ok || v == 0 {
		t.Fatalf("commit = (%d, %v)", v, ok)
	}
	vec := make([]uint64, 2)
	roots := make([]rtree.NodeID, 2)
	tab.flushAll()
	if tab.lookup(1, v, vec, roots) {
		t.Fatal("client survived flushAll")
	}
	if _, ok := tab.commit(1, v, []uint64{4, 1}, []rtree.NodeID{1, 1}, gen); ok {
		t.Fatal("stale-generation commit accepted")
	}
	if _, ok := tab.commit(1, 0, []uint64{4, 1}, []rtree.NodeID{1, 1}, tab.generation()); !ok {
		t.Fatal("fresh-generation commit refused")
	}
}
