package cluster

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/dataset"
	"repro/internal/wire"
)

// Dial connects a client-side router to independently served shard
// processes (one prodb per shard): each address is dialed with the binary
// protocol (gob fallback), and the returned Router scatter-gathers across
// the live connections exactly like an in-process cluster.
//
// When cfg.Part is nil, a partition is derived from the shards' cataloged
// root rectangles: each shard's root center seeds one KD region, and the
// shard list is reordered so region ordinals match the dialed servers. The
// derived regions approximate whatever split produced the shard datasets —
// close enough to route every query correctly (query scatter uses live
// root rectangles, not regions), while an update whose rectangle the
// approximation misroutes fails its exact-match delete and reports false
// rather than corrupting anything. Deployments that stream updates should
// split their dataset with MakePartition and pass the same partition here.
//
// A shard connection that dies after Dial does not abort the router: each
// affected query is retried with backoff, and once the connection accrues
// cfg.FailThreshold consecutive failures the router redials the address
// transparently (counted in Stats().PerShard[s].Redials). Queries that
// exhaust their retries while the process is down fail individually — the
// failure is counted in Stats().PerShard[s].Errors and reported to
// cfg.OnShardError — and scatter-gathering resumes as soon as a redial
// lands. Only the initial dial of every address is all-or-nothing.
//
// Each connection's protocol handshake is bounded by cfg.HandshakeTimeout
// (default 10s), applied to both the TCP dial and the version exchange.
func Dial(addrs []string, cfg Config) (*Router, error) {
	hto := cfg.HandshakeTimeout
	if hto <= 0 {
		hto = defaultHandshakeTimeout
	}
	shards := make([]Shard, len(addrs))
	conns := make([]wire.Transport, len(addrs))
	for i, addr := range addrs {
		t, err := dialShard(addr, hto)
		if err != nil {
			for _, c := range conns[:i] {
				closeTransport(c)
			}
			return nil, err
		}
		conns[i] = t
		shards[i] = Shard{T: t}
		addr := addr
		shards[i].Redial = func() (wire.Transport, error) { return dialShard(addr, hto) }
	}
	if cfg.Part == nil {
		part, order, err := derivePartition(conns)
		if err != nil {
			for _, c := range conns {
				closeTransport(c)
			}
			return nil, err
		}
		cfg.Part = part
		reordered := make([]Shard, len(shards))
		for i, ord := range order {
			reordered[ord] = shards[i]
		}
		shards = reordered
	}
	r, err := New(shards, cfg)
	if err != nil {
		for _, c := range conns {
			closeTransport(c)
		}
		return nil, err
	}
	return r, nil
}

// defaultHandshakeTimeout bounds the dial + protocol handshake of one shard
// connection when Config.HandshakeTimeout is unset.
const defaultHandshakeTimeout = 10 * time.Second

// dialShard mirrors repro.Dial: binary with pipelining, gob as fallback.
// The whole connect-and-handshake runs under one context deadline so a
// half-open peer can't stall the router longer than the configured bound.
func dialShard(addr string, timeout time.Duration) (wire.Transport, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	deadline, _ := ctx.Deadline()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	conn.SetDeadline(deadline)
	bc, err := wire.NewBinaryClientConn(conn)
	if err == nil {
		conn.SetDeadline(time.Time{})
		return bc, nil
	}
	conn.Close()
	conn, err = d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	conn.SetDeadline(deadline)
	gc := wire.NewClientConn(conn)
	conn.SetDeadline(time.Time{})
	return gc, nil
}

func closeTransport(t wire.Transport) {
	if c, ok := t.(interface{ Close() error }); ok {
		c.Close()
	}
}

// derivePartition catalogs every shard and builds a KD partition whose
// regions each hold exactly one shard root center, returning the mapping
// from dialed index to region ordinal.
func derivePartition(conns []wire.Transport) (*Partition, []int, error) {
	objs := make([]dataset.Object, len(conns))
	for i, t := range conns {
		resp, err := t.RoundTrip(&wire.Request{Catalog: true})
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: catalog shard %d: %w", i, err)
		}
		objs[i] = dataset.Object{MBR: resp.RootMBR}
	}
	part, err := MakePartition(objs, len(conns))
	if err != nil {
		return nil, nil, err
	}
	order := make([]int, len(conns))
	seen := make([]bool, len(conns))
	for i, o := range objs {
		ord := part.LocateRect(o.MBR)
		if seen[ord] {
			return nil, nil, fmt.Errorf("cluster: shards %v share a derived region; pass an explicit Partition", []int{i, ord})
		}
		seen[ord] = true
		order[i] = ord
	}
	return part, order, nil
}
