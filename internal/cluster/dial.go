package cluster

import (
	"fmt"
	"net"
	"time"

	"repro/internal/dataset"
	"repro/internal/wire"
)

// Dial connects a client-side router to independently served shard
// processes (one prodb per shard): each address is dialed with the binary
// protocol (gob fallback), and the returned Router scatter-gathers across
// the live connections exactly like an in-process cluster.
//
// When cfg.Part is nil, a partition is derived from the shards' cataloged
// root rectangles: each shard's root center seeds one KD region, and the
// shard list is reordered so region ordinals match the dialed servers. The
// derived regions approximate whatever split produced the shard datasets —
// close enough to route every query correctly (query scatter uses live
// root rectangles, not regions), while an update whose rectangle the
// approximation misroutes fails its exact-match delete and reports false
// rather than corrupting anything. Deployments that stream updates should
// split their dataset with MakePartition and pass the same partition here.
//
// A shard connection that dies after Dial does not abort the router: each
// affected query fails, the failure is counted in Stats().PerShard[s].Errors
// and reported to cfg.OnShardError, and later queries keep scatter-gathering
// (a redialed transport can be swapped in by reconnecting at a higher
// layer, the way internal/load does). Only the initial dial of every
// address is all-or-nothing.
func Dial(addrs []string, cfg Config) (*Router, error) {
	shards := make([]Shard, len(addrs))
	conns := make([]wire.Transport, len(addrs))
	for i, addr := range addrs {
		t, err := dialShard(addr)
		if err != nil {
			for _, c := range conns[:i] {
				closeTransport(c)
			}
			return nil, err
		}
		conns[i] = t
		shards[i] = Shard{T: t}
	}
	if cfg.Part == nil {
		part, order, err := derivePartition(conns)
		if err != nil {
			for _, c := range conns {
				closeTransport(c)
			}
			return nil, err
		}
		cfg.Part = part
		reordered := make([]Shard, len(shards))
		for i, ord := range order {
			reordered[ord] = shards[i]
		}
		shards = reordered
	}
	r, err := New(shards, cfg)
	if err != nil {
		for _, c := range conns {
			closeTransport(c)
		}
		return nil, err
	}
	return r, nil
}

// dialShard mirrors repro.Dial: binary with pipelining, gob as fallback.
func dialShard(addr string) (wire.Transport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	bc, err := wire.NewBinaryClientConn(conn)
	if err == nil {
		conn.SetDeadline(time.Time{})
		return bc, nil
	}
	conn.Close()
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return wire.NewClientConn(conn), nil
}

func closeTransport(t wire.Transport) {
	if c, ok := t.(interface{ Close() error }); ok {
		c.Close()
	}
}

// derivePartition catalogs every shard and builds a KD partition whose
// regions each hold exactly one shard root center, returning the mapping
// from dialed index to region ordinal.
func derivePartition(conns []wire.Transport) (*Partition, []int, error) {
	objs := make([]dataset.Object, len(conns))
	for i, t := range conns {
		resp, err := t.RoundTrip(&wire.Request{Catalog: true})
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: catalog shard %d: %w", i, err)
		}
		objs[i] = dataset.Object{MBR: resp.RootMBR}
	}
	part, err := MakePartition(objs, len(conns))
	if err != nil {
		return nil, nil, err
	}
	order := make([]int, len(conns))
	seen := make([]bool, len(conns))
	for i, o := range objs {
		ord := part.LocateRect(o.MBR)
		if seen[ord] {
			return nil, nil, fmt.Errorf("cluster: shards %v share a derived region; pass an explicit Partition", []int{i, ord})
		}
		seen[ord] = true
		order[i] = ord
	}
	return part, order, nil
}
