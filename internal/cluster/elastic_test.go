package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

// Elastic topology correctness: splitting and merging shards online must be
// invisible to clients — the same update history produces the same query
// results as a single-node server, before, during, and after every
// topology change (docs/ELASTIC.md).

// buildBothElastic is buildBoth returning the InProcess handle (for
// SplitShard/MergeShards) instead of just the router.
func buildBothElastic(t testing.TB, objs []dataset.Object, n int, cfg InProcessConfig) (*server.Server, *InProcess, func()) {
	t.Helper()
	sizes := make(map[rtree.ObjectID]int, len(objs))
	for _, o := range objs {
		sizes[o.ID] = o.Size
	}
	single := buildServer(objs, sizes)
	cfg.Shards = n
	cfg.Tree = rtree.Params{MaxEntries: testMaxEntries}
	cfg.Sizer = func(id rtree.ObjectID) int { return sizes[id] }
	p, err := NewInProcess(objs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return single, p, func() {
		single.Close()
		p.Close()
	}
}

// checkEquivalence runs a spread of range/kNN/join queries against both
// backends and compares normalized results.
func checkEquivalence(t *testing.T, tag string, single *server.Server, router *Router, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for qi := 0; qi < 12; qi++ {
		c := geom.Pt(rng.Float64(), rng.Float64())
		var q query.Query
		switch qi % 3 {
		case 0:
			q = query.NewRange(geom.RectFromCenter(c, 0.02+rng.Float64()*0.25, 0.02+rng.Float64()*0.25))
		case 1:
			q = query.NewKNN(c, 1+rng.Intn(16))
		default:
			q = query.NewJoin(geom.RectFromCenter(c, 0.1+rng.Float64()*0.2, 0.1+rng.Float64()*0.2), 0.002+rng.Float64()*0.01)
		}
		qtag := fmt.Sprintf("%s query %d (%s)", tag, qi, q.Kind)
		sResp, _ := single.Execute(&wire.Request{Client: wire.ClientID(700 + qi), Q: q})
		cResp, err := router.RoundTrip(&wire.Request{Client: wire.ClientID(700 + qi), Q: q})
		if err != nil {
			t.Fatalf("%s: %v", qtag, err)
		}
		switch q.Kind {
		case query.Range:
			compareRange(t, qtag, sResp, cResp)
		case query.KNN:
			compareKNN(t, qtag, q, sResp, cResp)
		default:
			compareJoin(t, qtag, sResp, cResp)
		}
	}
	// Full-space sweep: the strongest content check.
	q := query.NewRange(geom.R(-10, -10, 10, 10))
	sResp, _ := single.Execute(&wire.Request{Client: 699, Q: q})
	cResp, err := router.RoundTrip(&wire.Request{Client: 699, Q: q})
	if err != nil {
		t.Fatalf("%s full sweep: %v", tag, err)
	}
	compareRange(t, tag+" full sweep", sResp, cResp)
}

// hottestLive returns the live shard owning the most objects per the gauges.
func hottestLive(p *InProcess) int {
	best, bestN := -1, int64(-1)
	for _, s := range p.LiveShards() {
		if n := p.Router.Stats().Shard(s).Objects.Load(); n > bestN {
			best, bestN = s, n
		}
	}
	return best
}

// gaugeSum adds up the live shards' object-count gauges.
func gaugeSum(p *InProcess) int64 {
	var sum int64
	for _, s := range p.LiveShards() {
		sum += p.Router.Stats().Shard(s).Objects.Load()
	}
	return sum
}

// TestClusterElasticSplitMergeEquivalence interleaves synchronous update
// batches with splits and merges, checking full equivalence and gauge
// consistency after every topology change.
func TestClusterElasticSplitMergeEquivalence(t *testing.T) {
	objs := genObjects(2400, 11)
	single, p, cleanup := buildBothElastic(t, objs, 2, InProcessConfig{})
	defer cleanup()
	router := p.Router
	upd := newUpdateStream(5, objs)

	applyBatch := func(round int) {
		t.Helper()
		ops := upd.batch(50)
		sResp := single.ExecuteUpdates(&wire.Request{Client: 900, Updates: ops})
		cResp, err := router.RoundTrip(&wire.Request{Client: 900, Updates: ops})
		if err != nil {
			t.Fatalf("round %d updates: %v", round, err)
		}
		for i := range sResp.UpdateResults {
			if sResp.UpdateResults[i] != cResp.UpdateResults[i] {
				t.Fatalf("round %d op %d (%+v): ack %v, want %v",
					round, i, ops[i], cResp.UpdateResults[i], sResp.UpdateResults[i])
			}
		}
	}
	checkGauges := func(tag string) {
		t.Helper()
		if got, want := gaugeSum(p), int64(len(upd.rects)); got != want {
			t.Fatalf("%s: object gauges sum to %d, want %d", tag, got, want)
		}
	}

	// Round 0: baseline.
	checkEquivalence(t, "baseline", single, router, 1000)
	checkGauges("baseline")

	type topoOp struct {
		name string
		run  func() error
	}
	schedule := []topoOp{
		{"split#1", func() error { return p.SplitShard(hottestLive(p)) }},
		{"split#2", func() error { return p.SplitShard(hottestLive(p)) }},
		{"split#3", func() error { return p.SplitShard(hottestLive(p)) }},
		{"merge#1", func() error {
			// Merge the most recently split pair: the newest slot is always a
			// leaf and its sibling survives by construction.
			tnew := len(p.Router.shards) - 1
			s, ok := p.SiblingOf(tnew)
			if !ok {
				return fmt.Errorf("slot %d has no mergeable sibling", tnew)
			}
			return p.MergeShards(s, tnew)
		}},
		{"split#4", func() error { return p.SplitShard(hottestLive(p)) }},
		{"merge#2", func() error {
			tnew := len(p.Router.shards) - 1
			s, ok := p.SiblingOf(tnew)
			if !ok {
				return fmt.Errorf("slot %d has no mergeable sibling", tnew)
			}
			return p.MergeShards(s, tnew)
		}},
	}
	for round, op := range schedule {
		applyBatch(round)
		if err := op.run(); err != nil {
			t.Fatalf("%s: %v", op.name, err)
		}
		checkEquivalence(t, op.name, single, router, int64(2000+round))
		checkGauges(op.name)
		applyBatch(round + 100) // updates must route correctly on the new topology
		checkEquivalence(t, op.name+"+updates", single, router, int64(3000+round))
		checkGauges(op.name + "+updates")
	}

	snap := router.Stats().Snapshot()
	if snap.Splits != 4 || snap.Merges != 2 {
		t.Fatalf("counters: %d splits / %d merges, want 4 / 2", snap.Splits, snap.Merges)
	}
	if len(p.LiveShards()) != 4 {
		t.Fatalf("live shards = %v, want 4 live", p.LiveShards())
	}
	if snap.HandoverNanos <= 0 {
		t.Fatal("handover duration not recorded")
	}
}

// TestClusterElasticDurable runs a split and a merge over a WAL-backed,
// replicated cluster — covering the durable Spawn path (packed image, fresh
// WAL dir, initial checkpoint, standby) — then crash-restarts the spawned
// shard and checks contents survived.
func TestClusterElasticDurable(t *testing.T) {
	objs := genObjects(1200, 17)
	single, p, cleanup := buildBothElastic(t, objs, 2, InProcessConfig{
		WALDir:   t.TempDir(),
		Replicas: true,
	})
	defer cleanup()
	upd := newUpdateStream(23, objs)

	if err := p.SplitShard(0); err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, "durable split", single, p.Router, 4000)

	// Stream updates so the spawned shard's WAL holds a tail past its
	// initial checkpoint, then crash-restart it.
	for i := 0; i < 5; i++ {
		ops := upd.batch(40)
		single.ExecuteUpdates(&wire.Request{Client: 901, Updates: ops})
		if _, err := p.Router.RoundTrip(&wire.Request{Client: 901, Updates: ops}); err != nil {
			t.Fatal(err)
		}
	}
	spawned := 2 // slot the split created
	p.Kill(spawned)
	if err := p.Restart(spawned); err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, "after restart", single, p.Router, 4100)

	s, ok := p.SiblingOf(spawned)
	if !ok {
		t.Fatalf("slot %d has no sibling", spawned)
	}
	if err := p.MergeShards(s, spawned); err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, "durable merge", single, p.Router, 4200)
}

// TestClusterElasticConcurrent splits and merges while query workers and an
// update stream hammer both backends — the -race exercise of the epoch
// fence, the handover window, and the dual-routing hook. After the storm the
// contents must be identical.
func TestClusterElasticConcurrent(t *testing.T) {
	objs := genObjects(1500, 43)
	single, p, cleanup := buildBothElastic(t, objs, 2, InProcessConfig{})
	defer cleanup()
	router := p.Router

	upd := newUpdateStream(99, objs)
	batches := make([][]wire.UpdateOp, 30)
	for i := range batches {
		batches[i] = upd.batch(24)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, ops := range batches {
			single.ExecuteUpdates(&wire.Request{Client: 901, Updates: ops})
			if _, err := router.RoundTrip(&wire.Request{Client: 901, Updates: ops}); err != nil {
				t.Errorf("cluster updates: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 60; i++ {
				c := geom.Pt(rng.Float64(), rng.Float64())
				var q query.Query
				if i%2 == 0 {
					q = query.NewRange(geom.RectFromCenter(c, 0.05, 0.05))
				} else {
					q = query.NewKNN(c, 5)
				}
				if _, err := router.RoundTrip(&wire.Request{Client: wire.ClientID(100 + w), Q: q}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				single.Execute(&wire.Request{Client: wire.ClientID(100 + w), Q: q})
			}
		}(w)
	}
	// Topology churn concurrent with everything above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for cycle := 0; cycle < 3; cycle++ {
			s := hottestLive(p)
			if err := p.SplitShard(s); err != nil {
				t.Errorf("concurrent split: %v", err)
				return
			}
			tnew := router.Shards() - 1
			if cycle%2 == 0 {
				sib, ok := p.SiblingOf(tnew)
				if !ok {
					t.Errorf("slot %d lost its sibling", tnew)
					return
				}
				if err := p.MergeShards(sib, tnew); err != nil {
					t.Errorf("concurrent merge: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	q := query.NewRange(geom.R(0, 0, 1, 1))
	sResp, _ := single.Execute(&wire.Request{Client: 1, Q: q})
	cResp, err := router.RoundTrip(&wire.Request{Client: 1, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	compareRange(t, "final full range", sResp, cResp)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		c := geom.Pt(rng.Float64(), rng.Float64())
		kq := query.NewKNN(c, 8)
		sResp, _ := single.Execute(&wire.Request{Client: 2, Q: kq})
		cResp, err := router.RoundTrip(&wire.Request{Client: 2, Q: kq})
		if err != nil {
			t.Fatal(err)
		}
		compareKNN(t, fmt.Sprintf("final knn %d", i), kq, sResp, cResp)
	}
	if got := gaugeSum(p); got != int64(len(upd.rects)) {
		t.Fatalf("object gauges sum to %d, want %d", got, len(upd.rects))
	}
}

// TestClusterElasticErrors pins the rejection paths: bad slots, non-sibling
// merges, and operations on retired slots must fail without disturbing the
// live topology.
func TestClusterElasticErrors(t *testing.T) {
	objs := genObjects(600, 3)
	single, p, cleanup := buildBothElastic(t, objs, 2, InProcessConfig{})
	defer cleanup()

	if err := p.SplitShard(7); err == nil {
		t.Fatal("splitting a nonexistent slot succeeded")
	}
	if err := p.MergeShards(0, 7); err == nil {
		t.Fatal("merging a nonexistent slot succeeded")
	}
	// Split 0 → slot 2; now 1 and 2 are not siblings (2's sibling is 0).
	if err := p.SplitShard(0); err != nil {
		t.Fatal(err)
	}
	if err := p.MergeShards(1, 2); err == nil {
		t.Fatal("merging non-siblings succeeded")
	}
	if err := p.MergeShards(0, 2); err != nil {
		t.Fatal(err)
	}
	// Slot 2 is retired: splitting or merging it must fail.
	if err := p.SplitShard(2); err == nil {
		t.Fatal("splitting a retired slot succeeded")
	}
	if err := p.MergeShards(0, 2); err == nil {
		t.Fatal("re-merging a retired slot succeeded")
	}
	checkEquivalence(t, "after rejections", single, p.Router, 5000)
}

// TestClientOverClusterElastic drives real proactive-caching clients (cache
// cuts, remainder handover, epoch tracking) across live splits and merges.
// A split must NOT flush clients — it surfaces as an ordinary invalidation
// window — while a merge must flush (the retired slot's node ids cannot be
// invalidated individually). Query results must match a single-node client
// throughout.
func TestClientOverClusterElastic(t *testing.T) {
	objs := genObjects(2000, 29)
	single, p, cleanup := buildBothElastic(t, objs, 4, InProcessConfig{})
	defer cleanup()
	router := p.Router

	clSingle := newTestClient(t, singleTransport(single), 7)
	clCluster := newTestClient(t, router, 7)
	rng := rand.New(rand.NewSource(321))
	upd := newUpdateStream(17, objs)
	hot := geom.Pt(0.5, 0.5)

	step := func(i int, tag string) {
		t.Helper()
		if i%6 == 5 {
			ops := upd.batch(25)
			single.ExecuteUpdates(&wire.Request{Client: 900, Updates: ops})
			if _, err := router.RoundTrip(&wire.Request{Client: 900, Updates: ops}); err != nil {
				t.Fatalf("%s %d: updates: %v", tag, i, err)
			}
		}
		hot = geom.Pt(clamp01(hot.X+(rng.Float64()-0.5)*0.15), clamp01(hot.Y+(rng.Float64()-0.5)*0.15))
		var q query.Query
		if i%2 == 0 {
			q = query.NewRange(geom.RectFromCenter(hot, 0.05, 0.05))
		} else {
			q = query.NewKNN(hot, 6)
		}
		repS, err := clSingle.Query(q)
		if err != nil {
			t.Fatalf("%s %d: single: %v", tag, i, err)
		}
		repC, err := clCluster.Query(q)
		if err != nil {
			t.Fatalf("%s %d: cluster: %v", tag, i, err)
		}
		w, g := sortedIDs(repS.Results), sortedIDs(repC.Results)
		if len(w) != len(g) {
			t.Fatalf("%s %d (%s): %d results, want %d", tag, i, q.Kind, len(g), len(w))
		}
		if q.Kind != query.KNN {
			for j := range w {
				if w[j] != g[j] {
					t.Fatalf("%s %d: result %d = %d, want %d", tag, i, j, g[j], w[j])
				}
			}
		}
	}

	for i := 0; i < 20; i++ {
		step(i, "warm")
	}

	// A watcher client brought current right before the split.
	const watcher = wire.ClientID(55)
	cat, err := router.RoundTrip(&wire.Request{Client: watcher, Catalog: true})
	if err != nil {
		t.Fatal(err)
	}
	watchEpoch := cat.Epoch

	if err := p.SplitShard(hottestLive(p)); err != nil {
		t.Fatal(err)
	}

	cat, err = router.RoundTrip(&wire.Request{Client: watcher, Catalog: true, Epoch: watchEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if cat.FlushAll {
		t.Fatal("split flushed clients; it must surface as an invalidation window")
	}
	watchEpoch = cat.Epoch

	for i := 0; i < 20; i++ {
		step(i, "post-split")
	}

	tnew := router.Shards() - 1
	sib, ok := p.SiblingOf(tnew)
	if !ok {
		t.Fatalf("slot %d has no sibling", tnew)
	}
	if err := p.MergeShards(sib, tnew); err != nil {
		t.Fatal(err)
	}

	cat, err = router.RoundTrip(&wire.Request{Client: watcher, Catalog: true, Epoch: watchEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if !cat.FlushAll {
		t.Fatal("merge did not flush clients; retired-slot refs would dangle")
	}

	for i := 0; i < 20; i++ {
		step(i, "post-merge")
	}
}
