package cluster

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Elastic partition mutations. A Partition stays immutable — the router
// swaps whole partitions under its topology fence — so every mutation here
// is clone-on-write: the KD tree is tiny (one node per shard), and a fresh
// copy means in-flight requests keep routing against the partition they
// started with.
//
// Shard ordinals are slots: a merge retires the losing slot's leaf but never
// renumbers the survivors (virtual NodeIDs encode the ordinal, and clients
// hold those ids). SplitLeaf can revive a dead slot, but the router always
// grows instead — a revived slot's new server would mint local node ids that
// alias a stale client's refs into the old server's subtrees — so a router's
// lifetime is bounded at MaxShards split operations (docs/ELASTIC.md).

// clone deep-copies the partition: KD nodes, regions, and liveness.
func (p *Partition) clone() *Partition {
	q := &Partition{
		n:       p.n,
		live:    append([]bool(nil), p.live...),
		Regions: append([]geom.Rect(nil), p.Regions...),
	}
	q.root = cloneKD(p.root)
	return q
}

func cloneKD(nd *kdNode) *kdNode {
	if nd == nil {
		return nil
	}
	c := *nd
	c.left = cloneKD(nd.left)
	c.right = cloneKD(nd.right)
	return &c
}

// Live reports whether slot s currently owns a leaf region.
func (p *Partition) Live(s int) bool {
	return s >= 0 && s < len(p.live) && p.live[s]
}

// LiveShards returns the ordinals of every live slot, ascending.
func (p *Partition) LiveShards() []int {
	out := make([]int, 0, p.n)
	for s, ok := range p.live {
		if ok {
			out = append(out, s)
		}
	}
	return out
}

// FreeSlot returns the lowest dead slot, or (p.n, false) when every slot is
// live and a split must grow the slot count.
func (p *Partition) FreeSlot() (int, bool) {
	for s, ok := range p.live {
		if !ok {
			return s, true
		}
	}
	return p.n, false
}

// LeafRegion returns slot s's display region (zero for dead slots).
func (p *Partition) LeafRegion(s int) geom.Rect {
	if !p.Live(s) {
		return geom.Rect{}
	}
	return p.Regions[s]
}

// containsLeaf reports whether the subtree holds the leaf owned by s.
func containsLeaf(nd *kdNode, s int) bool {
	if nd == nil {
		return false
	}
	if nd.left == nil {
		return nd.shard == s
	}
	return containsLeaf(nd.left, s) || containsLeaf(nd.right, s)
}

// leafCell returns the unclipped plane cell of slot s's leaf: the
// intersection of its ancestors' half-planes, infinite where unbounded.
// Unlike the display Regions (clipped to the build MBR), the cell is what
// Locate actually routes by, so a split cut is validated against it.
func (p *Partition) leafCell(s int) geom.Rect {
	cell := geom.Rect{
		MinX: math.Inf(-1), MinY: math.Inf(-1),
		MaxX: math.Inf(1), MaxY: math.Inf(1),
	}
	nd := p.root
	for nd.left != nil {
		if containsLeaf(nd.left, s) {
			if nd.axis == 0 {
				cell.MaxX = math.Min(cell.MaxX, nd.cut)
			} else {
				cell.MaxY = math.Min(cell.MaxY, nd.cut)
			}
			nd = nd.left
		} else {
			if nd.axis == 0 {
				cell.MinX = math.Max(cell.MinX, nd.cut)
			} else {
				cell.MinY = math.Max(cell.MinY, nd.cut)
			}
			nd = nd.right
		}
	}
	return cell
}

// findLeaf walks to the leaf owned by s and returns it with its parent
// (parent nil for a single-leaf partition).
func findLeaf(nd, parent *kdNode, s int) (leaf, par *kdNode) {
	if nd == nil {
		return nil, nil
	}
	if nd.left == nil {
		if nd.shard == s {
			return nd, parent
		}
		return nil, nil
	}
	if leaf, par = findLeaf(nd.left, nd, s); leaf != nil {
		return leaf, par
	}
	return findLeaf(nd.right, nd, s)
}

// SiblingOf returns the slot sharing s's KD parent, when that sibling is
// itself a leaf — the only configuration two regions can merge back into
// one rectangle. ok is false for dead slots, the root leaf, and slots whose
// sibling subtree has been split further.
func (p *Partition) SiblingOf(s int) (int, bool) {
	if !p.Live(s) {
		return 0, false
	}
	leaf, parent := findLeaf(p.root, nil, s)
	if leaf == nil || parent == nil {
		return 0, false
	}
	sib := parent.left
	if sib == leaf {
		sib = parent.right
	}
	if sib.left != nil {
		return 0, false
	}
	return sib.shard, true
}

// SplitLeaf cuts slot s's leaf at cut on axis (0 = x, 1 = y) and assigns
// the >= cut side to slot t, returning the mutated clone. t may be a dead
// slot (revived) or exactly p.n (the slot count grows by one); the split
// keeps Locate's convention that points on the plane go right, so s keeps
// the < cut side.
func (p *Partition) SplitLeaf(s, t, axis int, cut float64) (*Partition, error) {
	if !p.Live(s) {
		return nil, fmt.Errorf("cluster: split: shard %d is not a live slot", s)
	}
	if t != p.n && (t < 0 || t >= p.n || p.live[t]) {
		return nil, fmt.Errorf("cluster: split: target slot %d is not free", t)
	}
	if t == p.n && p.n >= MaxShards {
		return nil, fmt.Errorf("cluster: split: slot count would exceed %d shards", MaxShards)
	}
	if axis != 0 && axis != 1 {
		return nil, fmt.Errorf("cluster: split: axis %d outside {0,1}", axis)
	}
	cell := p.leafCell(s)
	lo, hi := cell.MinX, cell.MaxX
	if axis == 1 {
		lo, hi = cell.MinY, cell.MaxY
	}
	if !(cut > lo && cut < hi) {
		return nil, fmt.Errorf("cluster: split: cut %g outside shard %d's cell (%g,%g) on axis %d", cut, s, lo, hi, axis)
	}
	q := p.clone()
	if t == q.n {
		q.n++
		q.live = append(q.live, false)
		q.Regions = append(q.Regions, geom.Rect{})
	}
	leaf, _ := findLeaf(q.root, nil, s)
	// Display regions clamp the cut into the clipped rectangle; Locate
	// routes by the unclamped plane, so a cut beyond the build MBR just
	// leaves one display region degenerate.
	region := q.Regions[s]
	leftRegion, rightRegion := region, region
	if axis == 0 {
		c := math.Min(math.Max(cut, region.MinX), region.MaxX)
		leftRegion.MaxX, rightRegion.MinX = c, c
	} else {
		c := math.Min(math.Max(cut, region.MinY), region.MaxY)
		leftRegion.MaxY, rightRegion.MinY = c, c
	}
	leaf.axis, leaf.cut = axis, cut
	leaf.left = &kdNode{shard: s}
	leaf.right = &kdNode{shard: t}
	leaf.shard = 0
	q.live[t] = true
	q.Regions[s] = leftRegion
	q.Regions[t] = rightRegion
	return q, nil
}

// MergeLeaves collapses slot t's leaf into its KD sibling s: the parent cut
// disappears, s's leaf covers the union region, and slot t goes dead (to be
// revived by a later split, or left retired). s and t must be sibling
// leaves — SiblingOf(t) must report s.
func (p *Partition) MergeLeaves(s, t int) (*Partition, error) {
	if s == t {
		return nil, fmt.Errorf("cluster: merge: shard %d cannot merge with itself", s)
	}
	if sib, ok := p.SiblingOf(t); !ok || sib != s {
		return nil, fmt.Errorf("cluster: merge: shards %d and %d are not sibling leaves", s, t)
	}
	q := p.clone()
	leaf, parent := findLeaf(q.root, nil, t)
	// parent != nil: SiblingOf refused root leaves.
	survivor := parent.left
	if survivor == leaf {
		survivor = parent.right
	}
	parent.axis, parent.cut = survivor.axis, survivor.cut
	parent.left, parent.right = survivor.left, survivor.right
	parent.shard = survivor.shard
	q.live[t] = false
	q.Regions[s] = q.Regions[s].Union(q.Regions[t])
	q.Regions[t] = geom.Rect{}
	return q, nil
}
