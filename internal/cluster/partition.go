// Package cluster is the spatial sharding layer: it splits one dataset into
// N spatially partitioned shards — each an ordinary single-node server — and
// serves the whole wire protocol over them through a scatter-gather Router,
// so proactive-caching clients talk to a cluster exactly as they talk to one
// server (docs/CLUSTER.md).
//
// The design follows the space-partitioned shard + thin router architecture
// of scalable dynamic spatial database systems: shard ownership is a
// recursive KD split of the data space balanced by object count, queries
// scatter to the shards that can contribute (range: overlap test; kNN:
// best-first with per-shard distance bounds and re-issue on under-fetch;
// join: broadcast plus boundary-band cross-shard merge), and the merge layer
// re-keys shard-local node ids and epochs into a virtual namespace so the
// paper's cache-cut and epoch-invalidation protocols work unchanged.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Partition is a recursive KD split of the plane into shard regions. It is
// immutable after construction: Locate answers which shard owns a point, and
// ownership of an object is ownership of its rectangle's center. Updates
// that move an object across a region boundary re-partition it (the router
// turns the move into a delete on the old owner plus an insert on the new
// one), so the ownership invariant — every object lives on the shard owning
// its current center — holds for the cluster's whole lifetime.
type Partition struct {
	n    int
	root *kdNode

	// live marks which shard slots currently own a leaf. A build-time
	// partition is fully live; elastic merges retire slots (the KD leaf
	// disappears but the ordinal is never renumbered, because virtual
	// NodeIDs encode it) and elastic splits may revive them
	// (partition_elastic.go).
	live []bool

	// Regions are the shard regions clipped to the build dataset's bounding
	// rectangle, for display and testing. Locate is the authority: the cut
	// planes partition the whole plane, so objects inserted outside the
	// build MBR still have exactly one owner.
	Regions []geom.Rect
}

// kdNode is one split: points with coordinate < cut on axis go left.
type kdNode struct {
	axis  int // 0 = x, 1 = y
	cut   float64
	left  *kdNode
	right *kdNode
	shard int // leaf: owning shard ordinal (left/right nil)
}

// MakePartition builds an n-way KD partition balanced by object count: each
// split divides the region's objects proportionally to the number of shards
// on either side, cutting the longer axis of the objects' bounding box at
// the weighted median of their centers. n must be at least 1; a partition
// over no objects splits the unit square instead.
func MakePartition(objects []dataset.Object, n int) (*Partition, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: partition needs at least 1 shard, got %d", n)
	}
	if n > MaxShards {
		return nil, fmt.Errorf("cluster: partition of %d shards exceeds the %d-shard limit", n, MaxShards)
	}
	centers := make([]geom.Point, len(objects))
	bounds := geom.R(0, 0, 1, 1)
	for i, o := range objects {
		centers[i] = o.MBR.Center()
		if i == 0 {
			bounds = o.MBR
		} else {
			bounds = bounds.Union(o.MBR)
		}
	}
	p := &Partition{n: n, live: make([]bool, n), Regions: make([]geom.Rect, n)}
	for s := range p.live {
		p.live[s] = true
	}
	next := 0
	p.root = p.build(centers, bounds, n, &next)
	return p, nil
}

// build recursively splits centers into n shards, assigning leaf ordinals in
// order. region is the running display rectangle for Regions.
func (p *Partition) build(centers []geom.Point, region geom.Rect, n int, next *int) *kdNode {
	if n == 1 {
		shard := *next
		*next++
		p.Regions[shard] = region
		return &kdNode{left: nil, right: nil, shard: shard}
	}
	nLeft := n / 2

	// Split the longer axis of the current region so shards stay chunky.
	axis := 0
	if region.Height() > region.Width() {
		axis = 1
	}
	coord := func(pt geom.Point) float64 {
		if axis == 0 {
			return pt.X
		}
		return pt.Y
	}
	sort.Slice(centers, func(i, j int) bool { return coord(centers[i]) < coord(centers[j]) })

	// The cut index divides objects proportionally to the shard counts on
	// either side, so leaf shards end up with near-equal object counts even
	// when n is not a power of two.
	cutIdx := len(centers) * nLeft / n
	var cut float64
	switch {
	case len(centers) == 0:
		// No data to balance: bisect the region.
		if axis == 0 {
			cut = (region.MinX + region.MaxX) / 2
		} else {
			cut = (region.MinY + region.MaxY) / 2
		}
	case cutIdx >= len(centers):
		cut = coord(centers[len(centers)-1])
	default:
		cut = coord(centers[cutIdx])
	}

	leftRegion, rightRegion := region, region
	if axis == 0 {
		leftRegion.MaxX, rightRegion.MinX = cut, cut
	} else {
		leftRegion.MaxY, rightRegion.MinY = cut, cut
	}
	node := &kdNode{axis: axis, cut: cut}
	node.left = p.build(centers[:cutIdx], leftRegion, nLeft, next)
	node.right = p.build(centers[cutIdx:], rightRegion, n-nLeft, next)
	return node
}

// Shards returns the number of shard regions.
func (p *Partition) Shards() int { return p.n }

// Locate returns the ordinal of the shard owning a point. Points exactly on
// a cut plane belong to the right side (centers sort before their cut).
func (p *Partition) Locate(pt geom.Point) int {
	nd := p.root
	for nd.left != nil {
		c := pt.X
		if nd.axis == 1 {
			c = pt.Y
		}
		if c < nd.cut {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.shard
}

// LocateRect returns the shard owning a rectangle: the owner of its center.
func (p *Partition) LocateRect(r geom.Rect) int {
	return p.Locate(r.Center())
}

// Split partitions objects into per-shard slices by ownership.
func (p *Partition) Split(objects []dataset.Object) [][]dataset.Object {
	out := make([][]dataset.Object, p.n)
	for _, o := range objects {
		s := p.LocateRect(o.MBR)
		out[s] = append(out[s], o)
	}
	return out
}
