//go:build race

package cluster

// raceEnabled reports that the race detector instruments this build;
// allocation-budget assertions are skipped (instrumentation inflates the
// measurement) and run in a separate non-race CI step instead.
const raceEnabled = true
