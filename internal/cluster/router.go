package cluster

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Shard is one member of the cluster as the router sees it: a transport to
// a single-node server plus an optional response recycler. In-process
// clusters pass the server's ReleaseResponse so the scatter-gather path
// stays allocation-free; dialed TCP shards leave Release nil and let the
// garbage collector take decoded responses.
type Shard struct {
	T       wire.Transport
	Release func(*wire.Response)
}

// Config parameterizes a Router.
type Config struct {
	// Part maps rectangles to owning shards; required (updates and
	// handed-over object references route through it).
	Part *Partition
	// Sizer reports build-time payload sizes, used when a cross-shard move
	// re-inserts an object on its new owner. Objects inserted over the wire
	// are tracked automatically; nil means unknown sizes re-insert as 0.
	Sizer func(rtree.ObjectID) int
	// EpochRing is how many recent virtual epochs each client may quote
	// before being flushed. Default 32.
	EpochRing int
	// MaxClients caps tracked clients per epoch-table lock shard (32
	// shards); beyond it arbitrary clients are evicted and flushed on
	// return. Default 4096.
	MaxClients int
	// Stats receives routing counters; nil allocates a private block.
	Stats *metrics.ClusterStats
	// OnShardError observes every failed sub-query (shard index and error)
	// before the router reports the query-level failure. Load harnesses use
	// it to count per-shard connection trouble as non-fatal events instead
	// of losing the detail inside the merged error. May be nil; called
	// concurrently.
	OnShardError func(shard int, err error)
}

// shardMeta is the router's last-known view of one shard: its current root
// page and epoch, refreshed from every sub-response.
type shardMeta struct {
	mu        sync.Mutex
	rootID    rtree.NodeID
	rootMBR   geom.Rect
	rootLevel int
	epoch     uint64
}

// rootInfo is a lock-free copy of shardMeta taken per request.
type rootInfo struct {
	id    rtree.NodeID
	mbr   geom.Rect
	level int
	epoch uint64
}

// Router serves the whole wire protocol over N spatially partitioned
// shards: queries scatter to the shards that can contribute and gather into
// one merged response, updates route to the owning shard (re-partitioning
// cross-boundary moves), and shard-local node ids and epochs are re-keyed
// into the virtual namespace clients see (docs/CLUSTER.md). A Router is
// itself a wire.Transport, safe for any number of concurrent callers.
type Router struct {
	shards  []Shard
	part    *Partition
	sizer   func(rtree.ObjectID) int
	stats   *metrics.ClusterStats
	onError func(shard int, err error)

	meta   []shardMeta
	epochs *epochTable

	// wireSizes tracks payload sizes of objects inserted through the
	// router, so cross-shard re-insertion preserves them.
	wireSizes sync.Map // rtree.ObjectID -> int

	// vroot caches the synthesized virtual-root representation, rebuilt
	// when any shard root changes.
	vmu       sync.Mutex
	vrootOf   []rootInfo
	vrootRep  wire.NodeRep
	statePool sync.Pool
	respPool  sync.Pool
}

// New builds a router over the shards, cataloging each one to learn its
// root and epoch. The shard count must match cfg.Part.
func New(shards []Shard, cfg Config) (*Router, error) {
	if cfg.Part == nil {
		return nil, errors.New("cluster: Config.Part is required")
	}
	if len(shards) != cfg.Part.Shards() {
		return nil, fmt.Errorf("cluster: %d shards but partition has %d regions", len(shards), cfg.Part.Shards())
	}
	if len(shards) == 0 || len(shards) > MaxShards {
		return nil, fmt.Errorf("cluster: shard count %d outside [1, %d]", len(shards), MaxShards)
	}
	r := &Router{
		shards:  shards,
		part:    cfg.Part,
		sizer:   cfg.Sizer,
		stats:   cfg.Stats,
		onError: cfg.OnShardError,
		meta:    make([]shardMeta, len(shards)),
		epochs:  newEpochTable(len(shards), cfg.EpochRing, cfg.MaxClients),
	}
	if r.stats == nil {
		r.stats = metrics.NewClusterStats(len(shards))
	}
	for s := range shards {
		resp, err := shards[s].T.RoundTrip(&wire.Request{Catalog: true})
		if err != nil {
			return nil, fmt.Errorf("cluster: catalog shard %d: %w", s, err)
		}
		r.observe(s, resp)
		r.release(s, resp)
	}
	return r, nil
}

// Stats returns the router's live counters.
func (r *Router) Stats() *metrics.ClusterStats { return r.stats }

// Shards returns the cluster size.
func (r *Router) Shards() int { return len(r.shards) }

// Close closes every shard transport that is closable (dialed TCP conns).
func (r *Router) Close() error {
	var first error
	for _, sh := range r.shards {
		if c, ok := sh.T.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// observe folds a sub-response into the shard's last-known metadata.
func (r *Router) observe(s int, resp *wire.Response) {
	m := &r.meta[s]
	m.mu.Lock()
	if resp.Epoch > m.epoch {
		m.epoch = resp.Epoch
	}
	if resp.RootID != rtree.InvalidNode {
		m.rootID = resp.RootID
		m.rootMBR = resp.RootMBR
	}
	m.mu.Unlock()
}

// observeLevel records a shard root's level when its rep ships by.
func (r *Router) observeLevel(s int, level int) {
	m := &r.meta[s]
	m.mu.Lock()
	if level > m.rootLevel {
		m.rootLevel = level
	}
	m.mu.Unlock()
}

// release hands a sub-response back to its shard's pool, if it has one.
func (r *Router) release(s int, resp *wire.Response) {
	if resp == nil {
		return
	}
	if rel := r.shards[s].Release; rel != nil {
		rel(resp)
	}
}

// snapshotMeta copies every shard's metadata into the request state.
func (r *Router) snapshotMeta(st *routeState) {
	for s := range r.meta {
		m := &r.meta[s]
		m.mu.Lock()
		st.meta[s] = rootInfo{id: m.rootID, mbr: m.rootMBR, level: m.rootLevel, epoch: m.epoch}
		m.mu.Unlock()
	}
}

// sizeOf reports an object's payload size for cross-shard re-insertion.
func (r *Router) sizeOf(id rtree.ObjectID) int {
	if sz, ok := r.wireSizes.Load(id); ok {
		return sz.(int)
	}
	if r.sizer != nil {
		return r.sizer(id)
	}
	return 0
}

// waveItem is one shard sub-request of the current scatter wave.
type waveItem struct {
	shard   int
	req     wire.Request
	resp    *wire.Response
	err     error
	reissue bool
	// task links a join band scan back to its cross task (-1 for primary
	// sub-queries); side is which end of the task it collects.
	task int
	side int
}

// crossTask is one cross-shard join candidate scan: objects beneath ref a
// on shard sa are paired against objects beneath ref b on shard sb.
type crossTask struct {
	sa, sb int
	a, b   query.Ref // shard-local refs (node, super, or root)
	candsA []wire.ObjectRep
	candsB []wire.ObjectRep
	haveA  bool
	haveB  bool
}

// routeState is the pooled per-request scratch of the router: sub-request
// buckets, merge buffers, epoch vectors. A warm state routes a single-shard
// query without allocating.
type routeState struct {
	nsh int

	baseVec    []uint64
	baseRoots  []rtree.NodeID
	newVec     []uint64
	newRoots   []rtree.NodeID
	queried    []bool
	flush      bool
	wantVroot  bool
	vrootStale bool // a shard root's content changed in the client's window

	meta []rootInfo

	subH     [][]query.QueuedElem
	selfSeed []bool
	minKey   []float64 // kNN: smallest handed-over key per shard

	wave []waveItem

	knnLower []float64 // lower bound on this shard's unseen objects
	knnObjs  []wire.ObjectRep
	knnDists []float64

	cross []crossTask
	sideA []pairSide
	sideB []pairSide

	seenObj  map[rtree.ObjectID]bool
	seenNode map[rtree.NodeID]bool
	seenObjI map[rtree.ObjectID]bool // invalidation-report object dedup
	seenPair map[[2]rtree.ObjectID]bool
}

func (r *Router) getState() *routeState {
	st, _ := r.statePool.Get().(*routeState)
	if st == nil {
		st = &routeState{}
	}
	n := len(r.shards)
	if st.nsh != n {
		st.nsh = n
		st.baseVec = make([]uint64, n)
		st.baseRoots = make([]rtree.NodeID, n)
		st.newVec = make([]uint64, n)
		st.newRoots = make([]rtree.NodeID, n)
		st.queried = make([]bool, n)
		st.meta = make([]rootInfo, n)
		st.subH = make([][]query.QueuedElem, n)
		st.selfSeed = make([]bool, n)
		st.minKey = make([]float64, n)
		st.knnLower = make([]float64, n)
	}
	for s := 0; s < n; s++ {
		st.queried[s] = false
		st.selfSeed[s] = false
		st.subH[s] = st.subH[s][:0]
	}
	st.flush = false
	st.wantVroot = false
	st.vrootStale = false
	st.wave = st.wave[:0]
	st.knnObjs = st.knnObjs[:0]
	st.knnDists = st.knnDists[:0]
	st.cross = st.cross[:0]
	st.seenObj = resetMap(st.seenObj)
	st.seenNode = resetMap(st.seenNode)
	st.seenObjI = resetMap(st.seenObjI)
	st.seenPair = resetMap(st.seenPair)
	return st
}

func (r *Router) putState(st *routeState) {
	// Sub-response pointers must not outlive the request.
	for i := range st.wave {
		st.wave[i].resp = nil
	}
	for i := range st.cross {
		st.cross[i].candsA = nil
		st.cross[i].candsB = nil
	}
	r.statePool.Put(st)
}

// scratchMapLimit mirrors the server's bound on retained scratch maps.
const scratchMapLimit = 4096

func resetMap[K comparable](m map[K]bool) map[K]bool {
	if m == nil || len(m) > scratchMapLimit {
		return make(map[K]bool)
	}
	clear(m)
	return m
}

// acquireResponse returns a zeroed merged response from the router's pool.
func (r *Router) acquireResponse() *wire.Response {
	resp, _ := r.respPool.Get().(*wire.Response)
	if resp == nil {
		resp = &wire.Response{}
	}
	return resp
}

// ReleaseResponse recycles a response returned by RoundTrip, retaining its
// backing slices. The serving layer (wire.ServeConfig.Release) calls it
// after encoding; callers that keep the response simply never release it.
func (r *Router) ReleaseResponse(resp *wire.Response) {
	if resp == nil {
		return
	}
	resp.Objects = resp.Objects[:0]
	resp.Pairs = resp.Pairs[:0]
	resp.Index = resp.Index[:0]
	resp.K = 0
	resp.RootID = rtree.InvalidNode
	resp.RootMBR = geom.Rect{}
	resp.Epoch = 0
	resp.FlushAll = false
	resp.InvalidNodes = resp.InvalidNodes[:0]
	resp.InvalidObjs = resp.InvalidObjs[:0]
	resp.UpdateResults = resp.UpdateResults[:0]
	r.respPool.Put(resp)
}

// issueWave runs every wave item against its shard — inline when there is
// exactly one (the fast path), on goroutines otherwise — and returns the
// first sub-query error.
func (r *Router) issueWave(items []waveItem) error {
	run := func(it *waveItem) {
		r.stats.SubQueries.Add(1)
		r.stats.PerShard[it.shard].SubQueries.Add(1)
		if it.reissue {
			r.stats.Reissues.Add(1)
		}
		it.resp, it.err = r.shards[it.shard].T.RoundTrip(&it.req)
		if it.err != nil {
			r.stats.PerShard[it.shard].Errors.Add(1)
			if r.onError != nil {
				r.onError(it.shard, it.err)
			}
		}
	}
	if len(items) == 1 {
		run(&items[0])
	} else {
		var wg sync.WaitGroup
		for i := range items {
			wg.Add(1)
			go func(it *waveItem) {
				defer wg.Done()
				run(it)
			}(&items[i])
		}
		wg.Wait()
	}
	for i := range items {
		if items[i].err != nil {
			// Free the responses that did arrive before bailing out.
			for j := range items {
				if items[j].err == nil && items[j].resp != nil {
					r.release(items[j].shard, items[j].resp)
					items[j].resp = nil
				}
			}
			return fmt.Errorf("cluster: shard %d: %w", items[i].shard, items[i].err)
		}
	}
	return nil
}

// loadEpochBase resolves the client's quoted virtual epoch into per-shard
// base epochs (st.baseVec) and the root set its cached virtual root
// reflects (st.baseRoots). Unknown epochs flush the client and rebase it on
// the current metadata, exactly like falling off the single-node update log.
func (r *Router) loadEpochBase(st *routeState, req *wire.Request) {
	if r.epochs.lookup(req.Client, req.Epoch, st.baseVec, st.baseRoots) {
		copy(st.newVec, st.baseVec)
		copy(st.newRoots, st.baseRoots)
		return
	}
	allZero := true
	for s := range st.meta {
		st.baseVec[s] = st.meta[s].epoch
		st.baseRoots[s] = st.meta[s].id
		if st.meta[s].epoch != 0 {
			allZero = false
		}
	}
	if !allZero || req.Epoch != 0 {
		st.flush = true
	}
	copy(st.newVec, st.baseVec)
	copy(st.newRoots, st.baseRoots)
}

// absorb merges one sub-response's consistency payload: shard metadata,
// epoch vector advancement, and the re-keyed invalidation report.
func (r *Router) absorb(st *routeState, s int, sub *wire.Response, resp *wire.Response) error {
	r.observe(s, sub)
	st.queried[s] = true
	if sub.Epoch > st.newVec[s] {
		st.newVec[s] = sub.Epoch
	}
	if sub.RootID != rtree.InvalidNode {
		st.newRoots[s] = sub.RootID
		// Refresh the request-local view too: the virtual-root rep this
		// response ships must reflect the same roots its epoch commit
		// claims, or a client could re-cache a stale root cut in the very
		// response that invalidated it — and never be told again.
		st.meta[s].id = sub.RootID
		st.meta[s].mbr = sub.RootMBR
	}
	if sub.FlushAll {
		st.flush = true
	}
	rootID := sub.RootID
	if rootID == rtree.InvalidNode {
		rootID = st.meta[s].id
	}
	for _, id := range sub.InvalidNodes {
		if id == rootID {
			// The shard root's content changed inside this client's window
			// (entries grew, shrank, or the root itself split): the cached
			// virtual-root cut carries that root's old MBR and could prune
			// the grown region, so it must be invalidated too.
			st.vrootStale = true
		}
		vid, ok := virtualNode(s, id)
		if !ok {
			return errVirtualSpace(s, id)
		}
		if !st.seenNode[vid] {
			st.seenNode[vid] = true
			resp.InvalidNodes = append(resp.InvalidNodes, vid)
		}
	}
	for _, id := range sub.InvalidObjs {
		if !st.seenObjI[id] {
			st.seenObjI[id] = true
			resp.InvalidObjs = append(resp.InvalidObjs, id)
		}
	}
	return nil
}

func errVirtualSpace(s int, id rtree.NodeID) error {
	return fmt.Errorf("cluster: shard %d node %d exceeds the virtual namespace (max %d)", s, id, MaxLocalNodes)
}

// mergeIndex re-keys one sub-response's supporting index into the merged
// response, reusing recycled NodeRep element storage.
func (r *Router) mergeIndex(st *routeState, s int, sub *wire.Response, resp *wire.Response) error {
	for i := range sub.Index {
		rep := &sub.Index[i]
		vid, ok := virtualNode(s, rep.ID)
		if !ok {
			return errVirtualSpace(s, rep.ID)
		}
		if rep.ID == st.meta[s].id && rep.Level > st.meta[s].level {
			st.meta[s].level = rep.Level
			r.observeLevel(s, rep.Level)
		}
		dst := extendReps(&resp.Index)
		dst.ID = vid
		dst.Level = rep.Level
		dst.Elems = dst.Elems[:0]
		for _, e := range rep.Elems {
			if e.Child != rtree.InvalidNode {
				vc, ok := virtualNode(s, e.Child)
				if !ok {
					return errVirtualSpace(s, e.Child)
				}
				e.Child = vc
			}
			dst.Elems = append(dst.Elems, e)
		}
	}
	return nil
}

// extendReps grows a NodeRep slice by one, reusing recycled capacity (and
// the recycled rep's element array) when available.
func extendReps(reps *[]wire.NodeRep) *wire.NodeRep {
	if len(*reps) < cap(*reps) {
		*reps = (*reps)[:len(*reps)+1]
	} else {
		*reps = append(*reps, wire.NodeRep{})
	}
	return &(*reps)[len(*reps)-1]
}

// appendVroot ships the synthesized virtual-root representation: one index
// node whose entries are the shard roots, re-keyed. Its partition tree is
// rebuilt only when a shard root changes, and the full cut is always
// shipped, so clients cache a complete, real-entry view of the root and
// never hold virtual-root super entries.
func (r *Router) appendVroot(st *routeState, resp *wire.Response) error {
	r.vmu.Lock()
	defer r.vmu.Unlock()
	stale := len(r.vrootOf) != st.nsh
	if !stale {
		for s := range st.meta {
			// Level participates: a cached rep whose level no longer tops
			// every shard root would break the parents-before-children
			// ordering of the merged index.
			if r.vrootOf[s].id != st.meta[s].id || r.vrootOf[s].mbr != st.meta[s].mbr ||
				r.vrootOf[s].level != st.meta[s].level {
				stale = true
				break
			}
		}
	}
	if stale {
		entries := make([]rtree.Entry, 0, st.nsh)
		maxLevel := 0
		for s := range st.meta {
			if st.meta[s].id == rtree.InvalidNode {
				continue
			}
			vid, ok := virtualNode(s, st.meta[s].id)
			if !ok {
				return errVirtualSpace(s, st.meta[s].id)
			}
			entries = append(entries, rtree.Entry{MBR: st.meta[s].mbr, Child: vid})
			if st.meta[s].level > maxLevel {
				maxLevel = st.meta[s].level
			}
		}
		rep := wire.NodeRep{ID: VirtualRoot, Level: maxLevel + 1}
		if len(entries) > 0 {
			pt := bpt.Build(VirtualRoot, entries)
			for _, code := range pt.FullCut() {
				pn, ok := pt.Node(code)
				if !ok || !pn.Leaf() {
					continue
				}
				rep.Elems = append(rep.Elems, wire.CutElem{
					Code:  code,
					MBR:   pn.Entry.MBR,
					Child: pn.Entry.Child,
				})
			}
		}
		r.vrootOf = append(r.vrootOf[:0], st.meta...)
		r.vrootRep = rep
	}
	dst := extendReps(&resp.Index)
	dst.ID = r.vrootRep.ID
	dst.Level = r.vrootRep.Level
	dst.Elems = append(dst.Elems[:0], r.vrootRep.Elems...)
	return nil
}

// finishConsistency stamps the merged response with the virtual root
// descriptor, the virtual-root invalidation (when any shard root moved
// inside the client's window), the flush flag, and the committed virtual
// epoch.
func (r *Router) finishConsistency(st *routeState, req *wire.Request, resp *wire.Response) {
	rootChanged := false
	mbr := geom.Rect{}
	first := true
	for s := range st.meta {
		cur := st.newRoots[s]
		if cur != st.baseRoots[s] {
			rootChanged = true
		}
		if st.meta[s].id == rtree.InvalidNode {
			continue
		}
		if first {
			mbr = st.meta[s].mbr
			first = false
		} else {
			mbr = mbr.Union(st.meta[s].mbr)
		}
	}
	resp.RootID = VirtualRoot
	resp.RootMBR = mbr
	if (rootChanged || st.vrootStale) && !st.flush && !st.seenNode[VirtualRoot] {
		st.seenNode[VirtualRoot] = true
		resp.InvalidNodes = append(resp.InvalidNodes, VirtualRoot)
	}
	if st.flush {
		resp.FlushAll = true
		resp.InvalidNodes = resp.InvalidNodes[:0]
		resp.InvalidObjs = resp.InvalidObjs[:0]
		r.stats.Flushes.Add(1)
	}
	resp.Epoch = r.epochs.commit(req.Client, req.Epoch, st.newVec, st.newRoots)
}

// RoundTrip implements wire.Transport over the cluster: updates route to
// their owning shards, catalogs fan to every shard, and queries scatter,
// gather, and merge (docs/CLUSTER.md).
func (r *Router) RoundTrip(req *wire.Request) (*wire.Response, error) {
	r.stats.Requests.Add(1)
	if len(req.Updates) > 0 {
		return r.routeUpdates(req)
	}
	if req.Catalog {
		return r.routeCatalog(req)
	}
	return r.routeQuery(req)
}

// routeCatalog fans the catalog to every shard, delivering each shard's
// invalidation window — this is what makes a client Sync() cluster-wide.
func (r *Router) routeCatalog(req *wire.Request) (*wire.Response, error) {
	st := r.getState()
	defer r.putState(st)
	r.snapshotMeta(st)
	r.loadEpochBase(st, req)

	for s := range r.shards {
		st.wave = append(st.wave, waveItem{shard: s, task: -1})
		it := &st.wave[len(st.wave)-1]
		it.req.Client = req.Client
		it.req.Catalog = true
		it.req.Epoch = st.baseVec[s]
	}
	if err := r.issueWave(st.wave); err != nil {
		return nil, err
	}
	resp := r.acquireResponse()
	for i := range st.wave {
		it := &st.wave[i]
		if err := r.absorb(st, it.shard, it.resp, resp); err != nil {
			r.releaseWave(st)
			r.ReleaseResponse(resp)
			return nil, err
		}
		r.release(it.shard, it.resp)
		it.resp = nil
	}
	r.finishConsistency(st, req, resp)
	return resp, nil
}

// releaseWave frees every still-held sub-response after a merge error.
func (r *Router) releaseWave(st *routeState) {
	for i := range st.wave {
		if st.wave[i].resp != nil {
			r.release(st.wave[i].shard, st.wave[i].resp)
			st.wave[i].resp = nil
		}
	}
}
