package cluster

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Shard is one member of the cluster as the router sees it: a transport to
// a single-node server plus an optional response recycler. In-process
// clusters pass the server's ReleaseResponse so the scatter-gather path
// stays allocation-free; dialed TCP shards leave Release nil and let the
// garbage collector take decoded responses.
type Shard struct {
	T       wire.Transport
	Release func(*wire.Response)

	// Replica is an optional warm standby kept current by the primary's
	// replication stream. When the primary exceeds Config.FailThreshold
	// consecutive failures the router promotes the replica transparently;
	// because the standby may lag the primary's final acked batches, the
	// promotion flushes every tracked client (docs/DURABILITY.md).
	Replica        wire.Transport
	ReplicaRelease func(*wire.Response)

	// Redial reconnects to the shard's primary (a restarted process that
	// recovered from its WAL, or a fresh TCP connection). Unlike promotion,
	// a successful redial does not flush clients: the recovered primary
	// answers stale epochs through its own invalidation protocol.
	Redial func() (wire.Transport, error)
}

// endpoint is the live transport the router currently uses for one shard.
// Swapped atomically on failover; the release function rides along so
// responses recycle into the pool of the server that produced them. (A
// response released across a failover boundary may land in the wrong pool —
// harmless, responses carry no server-specific state.)
type endpoint struct {
	t       wire.Transport
	release func(*wire.Response)
	// replica marks a promoted standby: further failures try Redial to get
	// back to a recovered primary rather than promoting again.
	replica bool
	// dialed marks a transport the router created via Shard.Redial and
	// therefore owns: it is closed when retired. The configured Shard.T and
	// Shard.Replica belong to the caller. (Ownership is tracked as a flag
	// because transports — func adapters included — need not be comparable.)
	dialed bool
}

// Config parameterizes a Router.
type Config struct {
	// Part maps rectangles to owning shards; required (updates and
	// handed-over object references route through it).
	Part *Partition
	// Sizer reports build-time payload sizes, used when a cross-shard move
	// re-inserts an object on its new owner. Objects inserted over the wire
	// are tracked automatically; nil means unknown sizes re-insert as 0.
	Sizer func(rtree.ObjectID) int
	// EpochRing is how many recent virtual epochs each client may quote
	// before being flushed. Default 32.
	EpochRing int
	// MaxClients caps tracked clients per epoch-table lock shard (32
	// shards); beyond it arbitrary clients are evicted and flushed on
	// return. Default 4096.
	MaxClients int
	// Stats receives routing counters; nil allocates a private block.
	Stats *metrics.ClusterStats
	// OnShardError observes every failed sub-query (shard index and error)
	// before the router reports the query-level failure. Load harnesses use
	// it to count per-shard connection trouble as non-fatal events instead
	// of losing the detail inside the merged error. May be nil; called
	// concurrently. Only final failures are reported — sub-queries that
	// succeed on retry or after failover are invisible here.
	OnShardError func(shard int, err error)
	// RetryAttempts is how many times a failed sub-query is re-sent (after
	// the initial attempt) before the error surfaces. Default 2; negative
	// disables retries.
	RetryAttempts int
	// RetryBackoff is the base delay between retry attempts, doubled per
	// attempt with jitter. Default 2ms.
	RetryBackoff time.Duration
	// FailThreshold is how many consecutive sub-query failures a shard
	// endpoint accrues before the router fails over (promoting the replica,
	// or redialing the primary). Default 3; negative disables failover.
	FailThreshold int
	// HandshakeTimeout bounds the per-connection protocol handshake when
	// dialing TCP shards (Dial and every Redial). Default 10s.
	HandshakeTimeout time.Duration
}

// shardMeta is the router's last-known view of one shard: its current root
// page and epoch, refreshed from every sub-response.
type shardMeta struct {
	mu        sync.Mutex
	rootID    rtree.NodeID
	rootMBR   geom.Rect
	rootLevel int
	epoch     uint64
}

// rootInfo is a lock-free copy of shardMeta taken per request.
type rootInfo struct {
	id    rtree.NodeID
	mbr   geom.Rect
	level int
	epoch uint64
}

// Router serves the whole wire protocol over N spatially partitioned
// shards: queries scatter to the shards that can contribute and gather into
// one merged response, updates route to the owning shard (re-partitioning
// cross-boundary moves), and shard-local node ids and epochs are re-keyed
// into the virtual namespace clients see (docs/CLUSTER.md). A Router is
// itself a wire.Transport, safe for any number of concurrent callers.
type Router struct {
	// topo fences the shard topology: every request holds it for read, and
	// an elastic cutover (SplitShard/MergeShards install phase) holds it for
	// write — which is exactly the "in-flight requests drain against the old
	// owner" semantics, since the write lock waits out every reader. All
	// slot-indexed slices below, plus part, are mutated only under the write
	// lock and therefore read freely under the read lock.
	topo sync.RWMutex
	// topoOpMu serializes whole split/merge operations (each spans several
	// topo critical sections).
	topoOpMu sync.Mutex
	// ho is the live handover window of an in-progress split (elastic.go);
	// nil outside one. Written under topo write lock.
	ho *handoverState

	shards  []Shard
	part    *Partition
	sizer   func(rtree.ObjectID) int
	stats   *metrics.ClusterStats
	onError func(shard int, err error)

	// eps holds the live endpoint per shard; failMu serializes failover
	// decisions and consecErr counts failures since the last success.
	// Elements are pointers so an elastic split can grow the slices without
	// copying lock-bearing values.
	eps       []*atomic.Pointer[endpoint]
	failMu    []*sync.Mutex
	consecErr []*atomic.Int32
	retries   int
	backoff   time.Duration
	threshold int

	meta   []*shardMeta
	epochs *epochTable

	// wireSizes tracks payload sizes of objects inserted through the
	// router, so cross-shard re-insertion preserves them.
	wireSizes sync.Map // rtree.ObjectID -> int

	// vroot caches the synthesized virtual-root representation, rebuilt
	// when any shard root changes.
	vmu       sync.Mutex
	vrootOf   []rootInfo
	vrootRep  wire.NodeRep
	statePool sync.Pool
	respPool  sync.Pool
}

// New builds a router over the shards, cataloging each one to learn its
// root and epoch. The shard count must match cfg.Part.
func New(shards []Shard, cfg Config) (*Router, error) {
	if cfg.Part == nil {
		return nil, errors.New("cluster: Config.Part is required")
	}
	if len(shards) != cfg.Part.Shards() {
		return nil, fmt.Errorf("cluster: %d shards but partition has %d regions", len(shards), cfg.Part.Shards())
	}
	if len(shards) == 0 || len(shards) > MaxShards {
		return nil, fmt.Errorf("cluster: shard count %d outside [1, %d]", len(shards), MaxShards)
	}
	r := &Router{
		shards:    shards,
		part:      cfg.Part,
		sizer:     cfg.Sizer,
		stats:     cfg.Stats,
		onError:   cfg.OnShardError,
		eps:       make([]*atomic.Pointer[endpoint], len(shards)),
		failMu:    make([]*sync.Mutex, len(shards)),
		consecErr: make([]*atomic.Int32, len(shards)),
		retries:   cfg.RetryAttempts,
		backoff:   cfg.RetryBackoff,
		threshold: cfg.FailThreshold,
		meta:      make([]*shardMeta, len(shards)),
		epochs:    newEpochTable(len(shards), cfg.EpochRing, cfg.MaxClients),
	}
	for s := range shards {
		r.eps[s] = &atomic.Pointer[endpoint]{}
		r.failMu[s] = &sync.Mutex{}
		r.consecErr[s] = &atomic.Int32{}
		r.meta[s] = &shardMeta{}
	}
	if r.retries == 0 {
		r.retries = defaultRetryAttempts
	} else if r.retries < 0 {
		r.retries = 0
	}
	if r.backoff <= 0 {
		r.backoff = defaultRetryBackoff
	}
	if r.threshold == 0 {
		r.threshold = defaultFailThreshold
	} else if r.threshold < 0 {
		r.threshold = 1 << 30 // effectively never
	}
	if r.stats == nil {
		r.stats = metrics.NewClusterStats(len(shards))
	}
	for s := range shards {
		r.eps[s].Store(&endpoint{t: shards[s].T, release: shards[s].Release})
		// The initial catalog is all-or-nothing: failover machinery only
		// covers shards that were healthy at construction.
		resp, err := shards[s].T.RoundTrip(&wire.Request{Catalog: true})
		if err != nil {
			return nil, fmt.Errorf("cluster: catalog shard %d: %w", s, err)
		}
		r.observe(s, resp)
		r.release(s, resp)
	}
	return r, nil
}

const (
	defaultRetryAttempts = 2
	defaultRetryBackoff  = 2 * time.Millisecond
	defaultFailThreshold = 3
)

// Partition exposes the router's KD partition. An edge cache keys its
// hotness accounting by partition cell (Partition.Locate on the query
// center), so the tier in front of the router groups traffic exactly the
// way the router shards it. Partitions are immutable; an elastic topology
// change swaps in a fresh one, so callers see a consistent (if possibly
// stale) geometry.
func (r *Router) Partition() *Partition {
	r.topo.RLock()
	defer r.topo.RUnlock()
	return r.part
}

// Stats returns the router's live counters.
func (r *Router) Stats() *metrics.ClusterStats { return r.stats }

// Shards returns the shard slot count, dead slots included.
func (r *Router) Shards() int {
	r.topo.RLock()
	defer r.topo.RUnlock()
	return len(r.shards)
}

// LiveShards returns the ordinals of the slots that currently own a region.
func (r *Router) LiveShards() []int {
	r.topo.RLock()
	defer r.topo.RUnlock()
	return r.part.LiveShards()
}

// SiblingOf returns the slot sharing s's KD parent when both are leaves —
// the only pair MergeShards accepts.
func (r *Router) SiblingOf(s int) (int, bool) {
	r.topo.RLock()
	defer r.topo.RUnlock()
	return r.part.SiblingOf(s)
}

// Close closes every shard transport that is closable (dialed TCP conns),
// including replicas and any endpoint swapped in by failover.
func (r *Router) Close() error {
	var first error
	closeOne := func(t wire.Transport) {
		if c, ok := t.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	for s := range r.shards {
		closeOne(r.shards[s].T)
		if r.shards[s].Replica != nil {
			closeOne(r.shards[s].Replica)
		}
		if ep := r.eps[s].Load(); ep != nil && ep.dialed {
			closeOne(ep.t)
		}
	}
	return first
}

// observe folds a sub-response into the shard's last-known metadata.
func (r *Router) observe(s int, resp *wire.Response) {
	m := r.meta[s]
	m.mu.Lock()
	if resp.Epoch > m.epoch {
		m.epoch = resp.Epoch
	}
	if resp.RootID != rtree.InvalidNode {
		m.rootID = resp.RootID
		m.rootMBR = resp.RootMBR
	}
	m.mu.Unlock()
}

// observeLevel records a shard root's level when its rep ships by.
func (r *Router) observeLevel(s int, level int) {
	m := r.meta[s]
	m.mu.Lock()
	if level > m.rootLevel {
		m.rootLevel = level
	}
	m.mu.Unlock()
}

// release hands a sub-response back to its shard's pool, if it has one.
func (r *Router) release(s int, resp *wire.Response) {
	if resp == nil {
		return
	}
	if ep := r.eps[s].Load(); ep != nil && ep.release != nil {
		ep.release(resp)
	}
}

// snapshotMeta copies every shard's metadata into the request state.
func (r *Router) snapshotMeta(st *routeState) {
	for s := range r.meta {
		m := r.meta[s]
		m.mu.Lock()
		st.meta[s] = rootInfo{id: m.rootID, mbr: m.rootMBR, level: m.rootLevel, epoch: m.epoch}
		m.mu.Unlock()
	}
}

// sizeOf reports an object's payload size for cross-shard re-insertion.
func (r *Router) sizeOf(id rtree.ObjectID) int {
	if sz, ok := r.wireSizes.Load(id); ok {
		return sz.(int)
	}
	if r.sizer != nil {
		return r.sizer(id)
	}
	return 0
}

// waveItem is one shard sub-request of the current scatter wave.
type waveItem struct {
	shard   int
	req     wire.Request
	resp    *wire.Response
	err     error
	reissue bool
	// task links a join band scan back to its cross task (-1 for primary
	// sub-queries); side is which end of the task it collects.
	task int
	side int
}

// crossTask is one cross-shard join candidate scan: objects beneath ref a
// on shard sa are paired against objects beneath ref b on shard sb.
type crossTask struct {
	sa, sb int
	a, b   query.Ref // shard-local refs (node, super, or root)
	candsA []wire.ObjectRep
	candsB []wire.ObjectRep
	haveA  bool
	haveB  bool
}

// routeState is the pooled per-request scratch of the router: sub-request
// buckets, merge buffers, epoch vectors. A warm state routes a single-shard
// query without allocating.
type routeState struct {
	nsh int

	baseVec    []uint64
	baseRoots  []rtree.NodeID
	newVec     []uint64
	newRoots   []rtree.NodeID
	queried    []bool
	flush      bool
	wantVroot  bool
	vrootStale bool   // a shard root's content changed in the client's window
	epochGen   uint64 // epoch-table generation when this request resolved its base

	meta []rootInfo

	subH     [][]query.QueuedElem
	selfSeed []bool
	minKey   []float64 // kNN: smallest handed-over key per shard

	wave []waveItem

	knnLower []float64 // lower bound on this shard's unseen objects
	knnObjs  []wire.ObjectRep
	knnDists []float64

	cross []crossTask
	sideA []pairSide
	sideB []pairSide

	seenObj  map[rtree.ObjectID]bool
	seenNode map[rtree.NodeID]bool
	seenObjI map[rtree.ObjectID]bool // invalidation-report object dedup
	seenPair map[[2]rtree.ObjectID]bool
}

func (r *Router) getState() *routeState {
	st, _ := r.statePool.Get().(*routeState)
	if st == nil {
		st = &routeState{}
	}
	n := len(r.shards)
	if st.nsh != n {
		st.nsh = n
		st.baseVec = make([]uint64, n)
		st.baseRoots = make([]rtree.NodeID, n)
		st.newVec = make([]uint64, n)
		st.newRoots = make([]rtree.NodeID, n)
		st.queried = make([]bool, n)
		st.meta = make([]rootInfo, n)
		st.subH = make([][]query.QueuedElem, n)
		st.selfSeed = make([]bool, n)
		st.minKey = make([]float64, n)
		st.knnLower = make([]float64, n)
	}
	for s := 0; s < n; s++ {
		st.queried[s] = false
		st.selfSeed[s] = false
		st.subH[s] = st.subH[s][:0]
	}
	st.flush = false
	st.wantVroot = false
	st.vrootStale = false
	st.wave = st.wave[:0]
	st.knnObjs = st.knnObjs[:0]
	st.knnDists = st.knnDists[:0]
	st.cross = st.cross[:0]
	st.seenObj = resetMap(st.seenObj)
	st.seenNode = resetMap(st.seenNode)
	st.seenObjI = resetMap(st.seenObjI)
	st.seenPair = resetMap(st.seenPair)
	return st
}

func (r *Router) putState(st *routeState) {
	// Sub-response pointers must not outlive the request.
	for i := range st.wave {
		st.wave[i].resp = nil
	}
	for i := range st.cross {
		st.cross[i].candsA = nil
		st.cross[i].candsB = nil
	}
	r.statePool.Put(st)
}

// scratchMapLimit mirrors the server's bound on retained scratch maps.
const scratchMapLimit = 4096

func resetMap[K comparable](m map[K]bool) map[K]bool {
	if m == nil || len(m) > scratchMapLimit {
		return make(map[K]bool)
	}
	clear(m)
	return m
}

// acquireResponse returns a zeroed merged response from the router's pool.
func (r *Router) acquireResponse() *wire.Response {
	resp, _ := r.respPool.Get().(*wire.Response)
	if resp == nil {
		resp = &wire.Response{}
	}
	return resp
}

// ReleaseResponse recycles a response returned by RoundTrip, retaining its
// backing slices. The serving layer (wire.ServeConfig.Release) calls it
// after encoding; callers that keep the response simply never release it.
func (r *Router) ReleaseResponse(resp *wire.Response) {
	if resp == nil {
		return
	}
	resp.Objects = resp.Objects[:0]
	resp.Pairs = resp.Pairs[:0]
	resp.Index = resp.Index[:0]
	resp.K = 0
	resp.RootID = rtree.InvalidNode
	resp.RootMBR = geom.Rect{}
	resp.Epoch = 0
	resp.FlushAll = false
	resp.InvalidNodes = resp.InvalidNodes[:0]
	resp.InvalidObjs = resp.InvalidObjs[:0]
	resp.UpdateResults = resp.UpdateResults[:0]
	r.respPool.Put(resp)
}

// roundTripShard sends one sub-request through the shard's live endpoint,
// absorbing transient failures: each transport error is retried with
// jittered exponential backoff, and once the endpoint accrues
// Config.FailThreshold consecutive failures the router fails over — to the
// warm replica when one is configured (flushing all clients, since the
// standby may lag the dead primary's final batches), otherwise by redialing
// the primary (no flush: a recovered primary serves its own invalidation
// protocol). Safe for concurrent callers; one goroutine performs the swap
// while the rest retry against whatever endpoint is current.
func (r *Router) roundTripShard(s int, req *wire.Request) (*wire.Response, error) {
	var lastErr error
	budget := r.retries // attempts remaining after the current one
	for attempt := 0; ; attempt++ {
		ep := r.eps[s].Load()
		resp, err := ep.t.RoundTrip(req)
		if err == nil {
			r.consecErr[s].Store(0)
			return resp, nil
		}
		lastErr = err
		failedOver := false
		if int(r.consecErr[s].Add(1)) >= r.threshold {
			failedOver = r.failover(s, ep)
			if failedOver && budget-attempt < 1 && attempt < r.retries+2*r.threshold {
				// The request that trips the threshold must still probe the
				// endpoint it just swapped in, or it fails on the very swap
				// that fixed the shard. The cap bounds pathological flapping.
				budget = attempt + 1
			}
		}
		if attempt >= budget {
			return nil, lastErr
		}
		r.stats.Shard(s).Retries.Add(1)
		if !failedOver {
			// A swapped endpoint is worth probing immediately; otherwise
			// give the shard a moment before the next attempt.
			time.Sleep(jitteredBackoff(r.backoff, attempt))
		}
	}
}

// jitteredBackoff doubles base per attempt and adds up to 50% jitter so
// concurrent sub-queries don't hammer a recovering shard in lockstep.
func jitteredBackoff(base time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d > 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	j := time.Duration(time.Now().UnixNano()) % (d/2 + 1)
	return d + j
}

// failover swaps the shard's endpoint after repeated failures. It returns
// true when the caller should retry immediately on a fresh endpoint (either
// this call swapped one in, or another goroutine already had).
func (r *Router) failover(s int, failed *endpoint) bool {
	r.failMu[s].Lock()
	defer r.failMu[s].Unlock()
	if r.eps[s].Load() != failed {
		return true // a concurrent failover already replaced it
	}
	sh := &r.shards[s]
	if !failed.replica && sh.Replica != nil {
		// Promote the warm standby. It has applied every batch the
		// replication stream delivered, but batches acked by the primary in
		// its final moments may be lost — every tracked client is flushed so
		// nobody trusts invalidation windows that straddle the gap, and the
		// shard's observed epoch restarts from the replica's own counter.
		r.eps[s].Store(&endpoint{t: sh.Replica, release: sh.ReplicaRelease, replica: true})
		m := r.meta[s]
		m.mu.Lock()
		m.epoch = 0
		m.mu.Unlock()
		r.epochs.flushAll()
		r.stats.Shard(s).Failovers.Add(1)
		r.consecErr[s].Store(0)
		return true
	}
	if sh.Redial != nil {
		t, err := sh.Redial()
		if err != nil {
			return false // primary still down; keep erroring until it returns
		}
		if failed.dialed {
			closeTransport(failed.t) // retire a previous redial's connection
		}
		r.eps[s].Store(&endpoint{t: t, dialed: true})
		r.stats.Shard(s).Redials.Add(1)
		r.consecErr[s].Store(0)
		return true
	}
	return false
}

// issueWave runs every wave item against its shard — inline when there is
// exactly one (the fast path), on goroutines otherwise — and returns the
// first sub-query error. During a split's handover window, update batches
// bound for the splitting shard serialize on the window lock and their
// acked operations are recorded in apply order, so the cutover can replay
// exactly the tail the transfer snapshot missed (elastic.go).
func (r *Router) issueWave(items []waveItem) error {
	run := func(it *waveItem) {
		r.stats.SubQueries.Add(1)
		r.stats.Shard(it.shard).SubQueries.Add(1)
		if it.reissue {
			r.stats.Reissues.Add(1)
		}
		if ho := r.ho; ho != nil && it.shard == ho.from && len(it.req.Updates) > 0 {
			ho.mu.Lock()
			it.resp, it.err = r.roundTripShard(it.shard, &it.req)
			if it.err == nil {
				ho.record(it.req.Updates, it.resp.UpdateResults)
			}
			ho.mu.Unlock()
		} else {
			it.resp, it.err = r.roundTripShard(it.shard, &it.req)
		}
		if it.err != nil {
			r.stats.Shard(it.shard).Errors.Add(1)
			if r.onError != nil {
				r.onError(it.shard, it.err)
			}
		}
	}
	if len(items) == 1 {
		run(&items[0])
	} else {
		var wg sync.WaitGroup
		for i := range items {
			wg.Add(1)
			go func(it *waveItem) {
				defer wg.Done()
				run(it)
			}(&items[i])
		}
		wg.Wait()
	}
	for i := range items {
		if items[i].err != nil {
			// Free the responses that did arrive before bailing out.
			for j := range items {
				if items[j].err == nil && items[j].resp != nil {
					r.release(items[j].shard, items[j].resp)
					items[j].resp = nil
				}
			}
			return fmt.Errorf("cluster: shard %d: %w", items[i].shard, items[i].err)
		}
	}
	return nil
}

// loadEpochBase resolves the client's quoted virtual epoch into per-shard
// base epochs (st.baseVec) and the root set its cached virtual root
// reflects (st.baseRoots). Unknown epochs flush the client and rebase it on
// the current metadata, exactly like falling off the single-node update log.
func (r *Router) loadEpochBase(st *routeState, req *wire.Request) {
	st.epochGen = r.epochs.generation()
	if r.epochs.lookup(req.Client, req.Epoch, st.baseVec, st.baseRoots) {
		copy(st.newVec, st.baseVec)
		copy(st.newRoots, st.baseRoots)
		return
	}
	allZero := true
	for s := range st.meta {
		st.baseVec[s] = st.meta[s].epoch
		st.baseRoots[s] = st.meta[s].id
		if st.meta[s].epoch != 0 {
			allZero = false
		}
	}
	if !allZero || req.Epoch != 0 {
		st.flush = true
	}
	copy(st.newVec, st.baseVec)
	copy(st.newRoots, st.baseRoots)
}

// absorb merges one sub-response's consistency payload: shard metadata,
// epoch vector advancement, and the re-keyed invalidation report.
func (r *Router) absorb(st *routeState, s int, sub *wire.Response, resp *wire.Response) error {
	r.observe(s, sub)
	st.queried[s] = true
	if sub.Epoch > st.newVec[s] {
		st.newVec[s] = sub.Epoch
	}
	if sub.RootID != rtree.InvalidNode {
		st.newRoots[s] = sub.RootID
		// Refresh the request-local view too: the virtual-root rep this
		// response ships must reflect the same roots its epoch commit
		// claims, or a client could re-cache a stale root cut in the very
		// response that invalidated it — and never be told again.
		st.meta[s].id = sub.RootID
		st.meta[s].mbr = sub.RootMBR
	}
	if sub.FlushAll {
		st.flush = true
	}
	rootID := sub.RootID
	if rootID == rtree.InvalidNode {
		rootID = st.meta[s].id
	}
	for _, id := range sub.InvalidNodes {
		if id == rootID {
			// The shard root's content changed inside this client's window
			// (entries grew, shrank, or the root itself split): the cached
			// virtual-root cut carries that root's old MBR and could prune
			// the grown region, so it must be invalidated too.
			st.vrootStale = true
		}
		vid, ok := virtualNode(s, id)
		if !ok {
			return errVirtualSpace(s, id)
		}
		if !st.seenNode[vid] {
			st.seenNode[vid] = true
			resp.InvalidNodes = append(resp.InvalidNodes, vid)
		}
	}
	for _, id := range sub.InvalidObjs {
		if !st.seenObjI[id] {
			st.seenObjI[id] = true
			resp.InvalidObjs = append(resp.InvalidObjs, id)
		}
	}
	return nil
}

func errVirtualSpace(s int, id rtree.NodeID) error {
	return fmt.Errorf("cluster: shard %d node %d exceeds the virtual namespace (max %d)", s, id, MaxLocalNodes)
}

// mergeIndex re-keys one sub-response's supporting index into the merged
// response, reusing recycled NodeRep element storage.
func (r *Router) mergeIndex(st *routeState, s int, sub *wire.Response, resp *wire.Response) error {
	for i := range sub.Index {
		rep := &sub.Index[i]
		vid, ok := virtualNode(s, rep.ID)
		if !ok {
			return errVirtualSpace(s, rep.ID)
		}
		if rep.ID == st.meta[s].id && rep.Level > st.meta[s].level {
			st.meta[s].level = rep.Level
			r.observeLevel(s, rep.Level)
		}
		dst := extendReps(&resp.Index)
		dst.ID = vid
		dst.Level = rep.Level
		dst.Elems = dst.Elems[:0]
		for _, e := range rep.Elems {
			if e.Child != rtree.InvalidNode {
				vc, ok := virtualNode(s, e.Child)
				if !ok {
					return errVirtualSpace(s, e.Child)
				}
				e.Child = vc
			}
			dst.Elems = append(dst.Elems, e)
		}
	}
	return nil
}

// extendReps grows a NodeRep slice by one, reusing recycled capacity (and
// the recycled rep's element array) when available.
func extendReps(reps *[]wire.NodeRep) *wire.NodeRep {
	if len(*reps) < cap(*reps) {
		*reps = (*reps)[:len(*reps)+1]
	} else {
		*reps = append(*reps, wire.NodeRep{})
	}
	return &(*reps)[len(*reps)-1]
}

// appendVroot ships the synthesized virtual-root representation: one index
// node whose entries are the shard roots, re-keyed. Its partition tree is
// rebuilt only when a shard root changes, and the full cut is always
// shipped, so clients cache a complete, real-entry view of the root and
// never hold virtual-root super entries.
func (r *Router) appendVroot(st *routeState, resp *wire.Response) error {
	r.vmu.Lock()
	defer r.vmu.Unlock()
	stale := len(r.vrootOf) != st.nsh
	if !stale {
		for s := range st.meta {
			// Level participates: a cached rep whose level no longer tops
			// every shard root would break the parents-before-children
			// ordering of the merged index.
			if r.vrootOf[s].id != st.meta[s].id || r.vrootOf[s].mbr != st.meta[s].mbr ||
				r.vrootOf[s].level != st.meta[s].level {
				stale = true
				break
			}
		}
	}
	if stale {
		entries := make([]rtree.Entry, 0, st.nsh)
		maxLevel := 0
		for s := range st.meta {
			if st.meta[s].id == rtree.InvalidNode {
				continue
			}
			vid, ok := virtualNode(s, st.meta[s].id)
			if !ok {
				return errVirtualSpace(s, st.meta[s].id)
			}
			entries = append(entries, rtree.Entry{MBR: st.meta[s].mbr, Child: vid})
			if st.meta[s].level > maxLevel {
				maxLevel = st.meta[s].level
			}
		}
		rep := wire.NodeRep{ID: VirtualRoot, Level: maxLevel + 1}
		if len(entries) > 0 {
			pt := bpt.Build(VirtualRoot, entries)
			for _, code := range pt.FullCut() {
				pn, ok := pt.Node(code)
				if !ok || !pn.Leaf() {
					continue
				}
				rep.Elems = append(rep.Elems, wire.CutElem{
					Code:  code,
					MBR:   pn.Entry.MBR,
					Child: pn.Entry.Child,
				})
			}
		}
		r.vrootOf = append(r.vrootOf[:0], st.meta...)
		r.vrootRep = rep
	}
	dst := extendReps(&resp.Index)
	dst.ID = r.vrootRep.ID
	dst.Level = r.vrootRep.Level
	dst.Elems = append(dst.Elems[:0], r.vrootRep.Elems...)
	return nil
}

// finishConsistency stamps the merged response with the virtual root
// descriptor, the virtual-root invalidation (when any shard root moved
// inside the client's window), the flush flag, and the committed virtual
// epoch.
func (r *Router) finishConsistency(st *routeState, req *wire.Request, resp *wire.Response) {
	rootChanged := false
	mbr := geom.Rect{}
	first := true
	for s := range st.meta {
		cur := st.newRoots[s]
		if cur != st.baseRoots[s] {
			rootChanged = true
		}
		if st.meta[s].id == rtree.InvalidNode {
			continue
		}
		if first {
			mbr = st.meta[s].mbr
			first = false
		} else {
			mbr = mbr.Union(st.meta[s].mbr)
		}
	}
	resp.RootID = VirtualRoot
	resp.RootMBR = mbr
	if (rootChanged || st.vrootStale) && !st.flush && !st.seenNode[VirtualRoot] {
		st.seenNode[VirtualRoot] = true
		resp.InvalidNodes = append(resp.InvalidNodes, VirtualRoot)
	}
	if st.flush {
		resp.FlushAll = true
		resp.InvalidNodes = resp.InvalidNodes[:0]
		resp.InvalidObjs = resp.InvalidObjs[:0]
		r.stats.Flushes.Add(1)
	}
	epoch, ok := r.epochs.commit(req.Client, req.Epoch, st.newVec, st.newRoots, st.epochGen)
	if !ok {
		// A replica promotion flushed the table while this request was in
		// flight: its base vector may describe epochs the promoted shard
		// never reached, so the commit was refused — flush the client and
		// let its next request rebase on post-failover state.
		if !resp.FlushAll {
			resp.FlushAll = true
			resp.InvalidNodes = resp.InvalidNodes[:0]
			resp.InvalidObjs = resp.InvalidObjs[:0]
			r.stats.Flushes.Add(1)
		}
		resp.Epoch = 0
		return
	}
	resp.Epoch = epoch
}

// RoundTrip implements wire.Transport over the cluster: updates route to
// their owning shards, catalogs fan to every shard, and queries scatter,
// gather, and merge (docs/CLUSTER.md). The whole request runs under the
// topology read fence, so an elastic cutover waits for it to drain and it
// never observes a half-installed shard set.
func (r *Router) RoundTrip(req *wire.Request) (*wire.Response, error) {
	r.topo.RLock()
	defer r.topo.RUnlock()
	r.stats.Requests.Add(1)
	if len(req.Updates) > 0 {
		return r.routeUpdates(req)
	}
	if req.Catalog {
		return r.routeCatalog(req)
	}
	return r.routeQuery(req)
}

// routeCatalog fans the catalog to every shard, delivering each shard's
// invalidation window — this is what makes a client Sync() cluster-wide.
func (r *Router) routeCatalog(req *wire.Request) (*wire.Response, error) {
	st := r.getState()
	defer r.putState(st)
	r.snapshotMeta(st)
	r.loadEpochBase(st, req)

	for s := range r.shards {
		if st.meta[s].id == rtree.InvalidNode {
			continue // slot retired by a merge; nothing to catalog
		}
		st.wave = append(st.wave, waveItem{shard: s, task: -1})
		it := &st.wave[len(st.wave)-1]
		it.req.Client = req.Client
		it.req.Catalog = true
		it.req.Epoch = st.baseVec[s]
	}
	if err := r.issueWave(st.wave); err != nil {
		return nil, err
	}
	resp := r.acquireResponse()
	for i := range st.wave {
		it := &st.wave[i]
		if err := r.absorb(st, it.shard, it.resp, resp); err != nil {
			r.releaseWave(st)
			r.ReleaseResponse(resp)
			return nil, err
		}
		r.release(it.shard, it.resp)
		it.resp = nil
	}
	r.finishConsistency(st, req, resp)
	return resp, nil
}

// releaseWave frees every still-held sub-response after a merge error.
func (r *Router) releaseWave(st *routeState) {
	for i := range st.wave {
		if st.wave[i].resp != nil {
			r.release(st.wave[i].shard, st.wave[i].resp)
			st.wave[i].resp = nil
		}
	}
}
