package cluster

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

// In-process clusters — N shard servers and their router inside one process
// — are built here once, for every consumer: the repro facade
// (NewClusterServer behind prodb -cluster), the simulation harness
// (procsim -fig throughput -cluster), and the equivalence test suite. One
// builder means one definition of how a dataset becomes shards.

// InProcessConfig parameterizes NewInProcess.
type InProcessConfig struct {
	// Shards is the number of spatial shards; default 4.
	Shards int
	// Tree shapes each shard's R*-tree (zero MaxEntries means the
	// paper's 204-entry pages); BulkFill is the bulk-load fill factor,
	// default 0.7.
	Tree     rtree.Params
	BulkFill float64
	// Server configures each shard server.
	Server server.Config
	// Sizer reports object payload sizes; it backs both the shard servers
	// and the router's cross-shard re-inserts. Required.
	Sizer func(rtree.ObjectID) int
	// EpochRing, MaxClients, Stats and OnShardError pass through to the
	// router Config.
	EpochRing    int
	MaxClients   int
	Stats        *metrics.ClusterStats
	OnShardError func(shard int, err error)
}

// InProcess is a running in-process cluster.
type InProcess struct {
	Router  *Router
	Servers []*server.Server
	Counts  []int // objects owned per shard at build time
}

// Close stops every shard's background update writer.
func (p *InProcess) Close() {
	for _, sh := range p.Servers {
		sh.Close()
	}
}

// ShardTransport wraps a single-node server as a router shard: batched
// updates go through the writer queue, everything else executes as a
// query, and responses recycle through the server's pool.
func ShardTransport(sh *server.Server) Shard {
	return Shard{
		T: wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
			if len(req.Updates) > 0 {
				return sh.ExecuteUpdates(req), nil
			}
			resp, _ := sh.Execute(req)
			return resp, nil
		}),
		Release: sh.ReleaseResponse,
	}
}

// NewInProcess KD-partitions the objects, bulk-loads one server per shard,
// and stands up the router over them. Every shard must own at least one
// object; datasets smaller than the shard count should shard less.
func NewInProcess(objects []dataset.Object, cfg InProcessConfig) (*InProcess, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 4
	}
	if cfg.BulkFill <= 0 {
		cfg.BulkFill = 0.7
	}
	if cfg.Tree.MaxEntries == 0 {
		cfg.Tree = rtree.DefaultParams()
	}
	if cfg.Sizer == nil {
		return nil, fmt.Errorf("cluster: InProcessConfig.Sizer is required")
	}
	part, err := MakePartition(objects, n)
	if err != nil {
		return nil, err
	}
	split := part.Split(objects)
	p := &InProcess{Counts: make([]int, n)}
	shards := make([]Shard, n)
	for s := range split {
		if len(split[s]) == 0 {
			p.Close()
			return nil, fmt.Errorf("cluster: shard %d/%d owns no objects; use fewer shards", s, n)
		}
		items := make([]rtree.Item, len(split[s]))
		for i, o := range split[s] {
			items[i] = rtree.Item{Obj: o.ID, MBR: o.MBR}
		}
		sh := server.New(rtree.BulkLoad(cfg.Tree, items, cfg.BulkFill), cfg.Sizer, cfg.Server)
		p.Servers = append(p.Servers, sh)
		p.Counts[s] = len(split[s])
		shards[s] = ShardTransport(sh)
	}
	p.Router, err = New(shards, Config{
		Part:         part,
		Sizer:        cfg.Sizer,
		EpochRing:    cfg.EpochRing,
		MaxClients:   cfg.MaxClients,
		Stats:        cfg.Stats,
		OnShardError: cfg.OnShardError,
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}
