package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

// In-process clusters — N shard servers and their router inside one process
// — are built here once, for every consumer: the repro facade
// (NewClusterServer behind prodb -cluster), the simulation harness
// (procsim -fig throughput -cluster), and the equivalence test suite. One
// builder means one definition of how a dataset becomes shards.

// InProcessConfig parameterizes NewInProcess.
type InProcessConfig struct {
	// Shards is the number of spatial shards; default 4.
	Shards int
	// Tree shapes each shard's R*-tree (zero MaxEntries means the
	// paper's 204-entry pages); BulkFill is the bulk-load fill factor,
	// default 0.7.
	Tree     rtree.Params
	BulkFill float64
	// Server configures each shard server.
	Server server.Config
	// Sizer reports object payload sizes; it backs both the shard servers
	// and the router's cross-shard re-inserts. Required.
	Sizer func(rtree.ObjectID) int
	// EpochRing, MaxClients, Stats, OnShardError, RetryAttempts,
	// RetryBackoff and FailThreshold pass through to the router Config.
	EpochRing     int
	MaxClients    int
	Stats         *metrics.ClusterStats
	OnShardError  func(shard int, err error)
	RetryAttempts int
	RetryBackoff  time.Duration
	FailThreshold int

	// WALDir enables per-shard durability: shard s logs every applied batch
	// to WALDir/shard-<s> and checkpoints on the WAL's schedule, and
	// Kill/Restart crash-recovers shards from their logs. Empty disables
	// durability (and Restart). Reopening a WALDir that already holds
	// history restores every shard (primary and standby alike) from its
	// checkpoint + tail instead of bulk-loading the objects — run the
	// process with the same dataset and shard count so the partition the
	// router derives matches the one the shards were logged under.
	WALDir string
	// WAL tunes the per-shard logs (checkpoint threshold, fsync policy).
	WAL wal.Options
	// Replicas runs one warm standby server per shard, fed the primary's
	// acked batches over the replication stream and handed to the router
	// for failover. Standbys are memory-only (no WAL).
	Replicas bool
}

// InProcess is a running in-process cluster.
type InProcess struct {
	Router  *Router
	Servers []*server.Server // the shard primaries as built or spawned (stale after Kill/Restart)
	Counts  []int            // objects owned per shard at build time

	cfg InProcessConfig // defaults materialized; reused by elastic Spawn

	pmu   sync.Mutex // guards procs growth (elastic splits append slots)
	procs []*procShard
}

// proc returns slot s's shard process (nil for never-populated slots).
func (p *InProcess) proc(s int) *procShard {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	if s < 0 || s >= len(p.procs) {
		return nil
	}
	return p.procs[s]
}

// Close stops every shard's background update writer, replication pump, and
// WAL handle.
func (p *InProcess) Close() {
	p.pmu.Lock()
	procs := append([]*procShard(nil), p.procs...)
	p.pmu.Unlock()
	for _, ps := range procs {
		if ps == nil {
			continue
		}
		ps.kill()
		if ps.replica != nil {
			ps.replica.Close()
		}
	}
}

// Kill crash-stops shard s: its transport starts failing immediately, the
// writer drains, the replication stream stops for good, and the WAL handle
// closes so a Restart can recover from disk. Idempotent. The router rides
// it out through retry, replica promotion, or redial-after-Restart.
func (p *InProcess) Kill(s int) {
	if ps := p.proc(s); ps != nil {
		ps.kill()
	}
}

// Restart recovers a killed shard from its WAL (checkpoint + tail replay)
// and brings it back as the shard's primary; the router's next redial binds
// to it. The restarted primary runs without a standby — its replica may
// already have been promoted, and re-streaming into it would double-apply.
// Restart of a live shard is a no-op.
func (p *InProcess) Restart(s int) error {
	ps := p.proc(s)
	if ps == nil {
		return fmt.Errorf("cluster: restart: no shard in slot %d", s)
	}
	return ps.restart()
}

// SplitShard splits shard s online (docs/ELASTIC.md): the far half of its
// region moves to a freshly spawned in-process shard behind an epoch-fenced
// cutover. The new slot gets its own WAL directory and standby when the
// cluster was configured with them.
func (p *InProcess) SplitShard(s int) error { return p.Router.SplitShard(s, p) }

// MergeShards folds shard t back into its KD sibling s and retires t's
// server. All clients flush (the dead slot's node ids cannot be
// invalidated individually).
func (p *InProcess) MergeShards(s, t int) error { return p.Router.MergeShards(s, t, p) }

// LiveShards returns the slots that currently own a region.
func (p *InProcess) LiveShards() []int { return p.Router.LiveShards() }

// SiblingOf returns shard s's KD sibling when both are leaves — the only
// pair MergeShards accepts.
func (p *InProcess) SiblingOf(s int) (int, bool) { return p.Router.SiblingOf(s) }

// Stats exposes the router's counters; with SplitShard/MergeShards and
// LiveShards/SiblingOf this completes the elastic.Cluster surface.
func (p *InProcess) Stats() *metrics.ClusterStats { return p.Router.Stats() }

// errShardDown is what a killed shard's transport returns: the process is
// gone, so every round trip fails until the router redials a restarted one.
var errShardDown = errors.New("cluster: shard is down")

// procShard is one shard "process": the live primary (nil while killed),
// its WAL, and the replication pump feeding the warm standby.
type procShard struct {
	idx     int
	cur     atomic.Pointer[server.Server]
	sizer   func(rtree.ObjectID) int
	baseCfg server.Config // per-server config without WAL/replication wiring
	walDir  string        // empty: no durability, Restart impossible
	walOpts wal.Options
	log     *wal.Log // open log of the live primary
	replica *server.Server
	repl    *replicator
	mu      sync.Mutex // serializes kill/restart transitions
}

func (ps *procShard) kill() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	srv := ps.cur.Swap(nil)
	if srv == nil {
		return
	}
	srv.Close() // drains the writer: every acked batch is in the WAL and the stream
	if ps.repl != nil {
		ps.repl.stop() // flush the remaining stream into the standby
		ps.repl = nil
	}
	if ps.log != nil {
		ps.log.Close()
		ps.log = nil
	}
}

func (ps *procShard) restart() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.cur.Load() != nil {
		return nil
	}
	if ps.walDir == "" {
		return fmt.Errorf("cluster: shard %d has no WAL to restart from", ps.idx)
	}
	l, err := wal.Open(ps.walDir, ps.walOpts)
	if err != nil {
		return fmt.Errorf("cluster: restart shard %d: %w", ps.idx, err)
	}
	rec := l.Recovered()
	if rec.Checkpoint == nil {
		l.Close()
		return fmt.Errorf("cluster: restart shard %d: no checkpoint on disk", ps.idx)
	}
	tail := replayTail(rec.Tail)
	cfg := ps.baseCfg
	cfg.WAL = l
	srv, err := server.Restore(rec.Checkpoint, tail, ps.sizer, cfg)
	if err != nil {
		l.Close()
		return fmt.Errorf("cluster: restart shard %d: %w", ps.idx, err)
	}
	ps.log = l
	ps.cur.Store(srv)
	return nil
}

// replayTail converts recovered WAL records into the server's replay form.
func replayTail(recs []wal.Record) []server.ReplayRecord {
	tail := make([]server.ReplayRecord, len(recs))
	for i, t := range recs {
		tail[i] = server.ReplayRecord{EpochBefore: t.EpochBefore, Ops: t.Ops}
	}
	return tail
}

// redial is the router's Shard.Redial: a transport bound to whatever
// primary is live right now, failing while the shard is down.
func (ps *procShard) redial() (wire.Transport, error) {
	srv := ps.cur.Load()
	if srv == nil {
		return nil, errShardDown
	}
	return boundTransport{ps: ps, srv: srv}, nil
}

// boundTransport serves one primary generation: once the shard is killed or
// restarted, round trips through the old binding fail like a dead TCP
// connection would, which is what drives the router's retry/redial path.
type boundTransport struct {
	ps  *procShard
	srv *server.Server
}

func (t boundTransport) RoundTrip(req *wire.Request) (*wire.Response, error) {
	if t.ps.cur.Load() != t.srv {
		return nil, errShardDown
	}
	if len(req.Updates) > 0 {
		return t.srv.ExecuteUpdates(req), nil
	}
	resp, _ := t.srv.Execute(req)
	return resp, nil
}

// replicator pumps acked batches from the primary's writer into the warm
// standby. The tap runs on the writer goroutine and blocks when the bounded
// stream fills, so the standby's lag stays bounded by the channel depth.
type replicator struct {
	ch   chan []wire.UpdateOp
	done chan struct{}
}

func newReplicator(replica *server.Server) *replicator {
	r := &replicator{ch: make(chan []wire.UpdateOp, 256), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		for ops := range r.ch {
			resp := replica.ExecuteUpdates(&wire.Request{Replica: true, Updates: ops})
			replica.ReleaseResponse(resp)
		}
	}()
	return r
}

func (r *replicator) tap(_ uint64, ops []wire.UpdateOp) {
	r.ch <- append([]wire.UpdateOp(nil), ops...)
}

func (r *replicator) stop() {
	close(r.ch)
	<-r.done
}

// ShardTransport wraps a single-node server as a router shard: batched
// updates go through the writer queue, everything else executes as a
// query, and responses recycle through the server's pool.
func ShardTransport(sh *server.Server) Shard {
	return Shard{
		T: wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
			if len(req.Updates) > 0 {
				return sh.ExecuteUpdates(req), nil
			}
			resp, _ := sh.Execute(req)
			return resp, nil
		}),
		Release: sh.ReleaseResponse,
	}
}

// NewInProcess KD-partitions the objects, bulk-loads one server per shard,
// and stands up the router over them. Every shard must own at least one
// object; datasets smaller than the shard count should shard less. With
// cfg.WALDir set each shard logs and checkpoints for crash recovery; with
// cfg.Replicas each shard streams to a warm standby the router can promote.
func NewInProcess(objects []dataset.Object, cfg InProcessConfig) (*InProcess, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 4
	}
	if cfg.BulkFill <= 0 {
		cfg.BulkFill = 0.7
	}
	if cfg.Tree.MaxEntries == 0 {
		cfg.Tree = rtree.DefaultParams()
	}
	if cfg.Sizer == nil {
		return nil, fmt.Errorf("cluster: InProcessConfig.Sizer is required")
	}
	part, err := MakePartition(objects, n)
	if err != nil {
		return nil, err
	}
	split := part.Split(objects)
	cfg.Shards = n
	p := &InProcess{Counts: make([]int, n), cfg: cfg}
	shards := make([]Shard, n)
	for s := range split {
		if len(split[s]) == 0 {
			p.Close()
			return nil, fmt.Errorf("cluster: shard %d/%d owns no objects; use fewer shards", s, n)
		}
		items := make([]rtree.Item, len(split[s]))
		for i, o := range split[s] {
			items[i] = rtree.Item{Obj: o.ID, MBR: o.MBR}
		}
		ps := &procShard{idx: s, sizer: cfg.Sizer, baseCfg: cfg.Server, walOpts: cfg.WAL}
		srvCfg := cfg.Server
		var rec *wal.Recovery // non-nil: the WAL dir holds durable state to restore
		if cfg.WALDir != "" {
			dir := filepath.Join(cfg.WALDir, fmt.Sprintf("shard-%d", s))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				p.Close()
				return nil, fmt.Errorf("cluster: shard %d wal dir: %w", s, err)
			}
			l, err := wal.Open(dir, cfg.WAL)
			if err != nil {
				p.Close()
				return nil, fmt.Errorf("cluster: shard %d wal: %w", s, err)
			}
			ps.walDir = dir
			ps.log = l
			srvCfg.WAL = l
			if r := l.Recovered(); r.Checkpoint != nil {
				rec = r
			}
		}
		var tail []server.ReplayRecord
		if rec != nil {
			tail = replayTail(rec.Tail)
		}
		if cfg.Replicas {
			// The standby must start bit-for-bit equal to the primary so the
			// replicated op stream keeps the pair identical: on a fresh boot
			// both bulk-load the identical items with identical parameters;
			// on a reopen both restore from the same checkpoint + tail (the
			// standby memory-only, without the log handle).
			var rep *server.Server
			if rec != nil {
				var err error
				rep, err = server.Restore(rec.Checkpoint, tail, cfg.Sizer, cfg.Server)
				if err != nil {
					ps.log.Close()
					p.Close()
					return nil, fmt.Errorf("cluster: shard %d standby restore: %w", s, err)
				}
			} else {
				rep = server.New(rtree.BulkLoad(cfg.Tree, items, cfg.BulkFill), cfg.Sizer, cfg.Server)
			}
			ps.replica = rep
			ps.repl = newReplicator(rep)
			srvCfg.OnApplied = ps.repl.tap
		}
		var sh *server.Server
		if rec != nil {
			var err error
			sh, err = server.Restore(rec.Checkpoint, tail, cfg.Sizer, srvCfg)
			if err != nil {
				ps.log.Close()
				p.Close()
				return nil, fmt.Errorf("cluster: shard %d restore: %w", s, err)
			}
		} else {
			sh = server.New(rtree.BulkLoad(cfg.Tree, items, cfg.BulkFill), cfg.Sizer, srvCfg)
			if srvCfg.WAL != nil {
				if err := sh.Checkpoint(); err != nil {
					sh.Close()
					p.Close()
					return nil, fmt.Errorf("cluster: shard %d initial checkpoint: %w", s, err)
				}
			}
		}
		ps.cur.Store(sh)
		p.procs = append(p.procs, ps)
		p.Servers = append(p.Servers, sh)
		p.Counts[s] = len(split[s])
		shards[s] = Shard{
			T:       boundTransport{ps: ps, srv: sh},
			Release: sh.ReleaseResponse,
			Redial:  ps.redial,
		}
		if ps.replica != nil {
			rep := ps.replica
			shards[s].Replica = wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
				if len(req.Updates) > 0 {
					return rep.ExecuteUpdates(req), nil
				}
				resp, _ := rep.Execute(req)
				return resp, nil
			})
			shards[s].ReplicaRelease = rep.ReleaseResponse
		}
	}
	p.Router, err = New(shards, Config{
		Part:          part,
		Sizer:         cfg.Sizer,
		EpochRing:     cfg.EpochRing,
		MaxClients:    cfg.MaxClients,
		Stats:         cfg.Stats,
		OnShardError:  cfg.OnShardError,
		RetryAttempts: cfg.RetryAttempts,
		RetryBackoff:  cfg.RetryBackoff,
		FailThreshold: cfg.FailThreshold,
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	// Seed the per-shard object-count gauges the rebalancer triggers on;
	// from here the router maintains them on every acked update.
	for s, c := range p.Counts {
		p.Router.Stats().Shard(s).Objects.Store(int64(c))
	}
	return p, nil
}

// Spawn stands up a fresh shard process for slot t from a bulk-loaded
// packed image — the split's transfer format: the donor's half bulk-loads
// into a tree, serializes through AppendImage, and the spawned server opens
// the deserialized copy, exactly as a remote spawn would receive it. The
// slot gets its own WAL directory (with an initial checkpoint covering the
// image) and a warm standby opened from the same image when the cluster is
// configured with durability or replicas. Called by Router.SplitShard;
// not for direct use.
func (p *InProcess) Spawn(t int, items []rtree.Item, size func(rtree.ObjectID) int) (Shard, error) {
	cfg := p.cfg
	img := rtree.BulkLoad(cfg.Tree, items, cfg.BulkFill).AppendImage(nil)
	tree, err := rtree.ReadImage(img)
	if err != nil {
		return Shard{}, fmt.Errorf("cluster: spawn shard %d image: %w", t, err)
	}
	ps := &procShard{idx: t, sizer: size, baseCfg: cfg.Server, walOpts: cfg.WAL}
	srvCfg := cfg.Server
	if cfg.WALDir != "" {
		// Slots are never reused, so shard-<t> is necessarily a fresh
		// directory the first time slot t spawns in this WALDir.
		dir := filepath.Join(cfg.WALDir, fmt.Sprintf("shard-%d", t))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return Shard{}, fmt.Errorf("cluster: spawn shard %d wal dir: %w", t, err)
		}
		l, err := wal.Open(dir, cfg.WAL)
		if err != nil {
			return Shard{}, fmt.Errorf("cluster: spawn shard %d wal: %w", t, err)
		}
		ps.walDir = dir
		ps.log = l
		srvCfg.WAL = l
	}
	if cfg.Replicas {
		repTree, err := rtree.ReadImage(img)
		if err != nil {
			if ps.log != nil {
				ps.log.Close()
			}
			return Shard{}, fmt.Errorf("cluster: spawn shard %d standby image: %w", t, err)
		}
		rep := server.New(repTree, size, cfg.Server)
		ps.replica = rep
		ps.repl = newReplicator(rep)
		srvCfg.OnApplied = ps.repl.tap
	}
	sh := server.New(tree, size, srvCfg)
	if srvCfg.WAL != nil {
		if err := sh.Checkpoint(); err != nil {
			sh.Close()
			if ps.repl != nil {
				ps.repl.stop()
			}
			if ps.replica != nil {
				ps.replica.Close()
			}
			ps.log.Close()
			return Shard{}, fmt.Errorf("cluster: spawn shard %d initial checkpoint: %w", t, err)
		}
	}
	ps.cur.Store(sh)
	p.pmu.Lock()
	for len(p.procs) <= t {
		p.procs = append(p.procs, nil)
	}
	p.procs[t] = ps
	p.Servers = append(p.Servers, sh)
	p.pmu.Unlock()
	shard := Shard{
		T:       boundTransport{ps: ps, srv: sh},
		Release: sh.ReleaseResponse,
		Redial:  ps.redial,
	}
	if ps.replica != nil {
		rep := ps.replica
		shard.Replica = wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
			if len(req.Updates) > 0 {
				return rep.ExecuteUpdates(req), nil
			}
			resp, _ := rep.Execute(req)
			return resp, nil
		})
		shard.ReplicaRelease = rep.ReleaseResponse
	}
	return shard, nil
}

// Retire tears down slot t's process after a merge drained it (or after a
// split aborted before installing it): server closed, WAL closed, standby
// released. Called by the router; not for direct use.
func (p *InProcess) Retire(t int) {
	ps := p.proc(t)
	if ps == nil {
		return
	}
	ps.kill()
	if ps.replica != nil {
		ps.replica.Close()
		ps.replica = nil
	}
}
