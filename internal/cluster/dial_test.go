package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestDialClusterOverTCP stands up independently served shard processes
// (wire.NetServer over loopback, exactly the prodb serving path), dials
// them with cluster.Dial — deriving the partition from the shard roots —
// and checks query results against a single-node server served the same
// way, so both sides see identical float32 wire quantization.
func TestDialClusterOverTCP(t *testing.T) {
	objs := genObjects(1200, 21)
	sizes := make(map[rtree.ObjectID]int, len(objs))
	for _, o := range objs {
		sizes[o.ID] = o.Size
	}

	serve := func(sh *server.Server) (string, func()) {
		ns := wire.NewNetServer(func(req *wire.Request) (*wire.Response, error) {
			if len(req.Updates) > 0 {
				return sh.ExecuteUpdates(req), nil
			}
			resp, _ := sh.Execute(req)
			return resp, nil
		}, wire.ServeConfig{Release: sh.ReleaseResponse})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = ns.Serve(ln) }()
		return ln.Addr().String(), func() { ns.Close(); sh.Close() }
	}

	single := buildServer(objs, sizes)
	singleAddr, stopSingle := serve(single)
	defer stopSingle()

	part, err := MakePartition(objs, 3)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for s, shardObjs := range part.Split(objs) {
		if len(shardObjs) == 0 {
			t.Fatalf("shard %d empty", s)
		}
		addr, stop := serve(buildServer(shardObjs, sizes))
		defer stop()
		addrs = append(addrs, addr)
	}

	router, err := Dial(addrs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if router.Shards() != 3 {
		t.Fatalf("Shards() = %d", router.Shards())
	}

	sConn, err := net.Dial("tcp", singleAddr)
	if err != nil {
		t.Fatal(err)
	}
	singleTr, err := wire.NewBinaryClientConn(sConn)
	if err != nil {
		t.Fatal(err)
	}
	defer singleTr.Close()

	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		c := geom.Pt(rng.Float64(), rng.Float64())
		var q query.Query
		switch i % 3 {
		case 0:
			q = query.NewRange(geom.RectFromCenter(c, 0.1, 0.1))
		case 1:
			q = query.NewKNN(c, 5)
		default:
			q = query.NewJoin(geom.RectFromCenter(c, 0.15, 0.15), 0.005)
		}
		tag := fmt.Sprintf("query %d (%s)", i, q.Kind)
		sResp, err := singleTr.RoundTrip(&wire.Request{Client: 1, Q: q})
		if err != nil {
			t.Fatalf("%s: single: %v", tag, err)
		}
		cResp, err := router.RoundTrip(&wire.Request{Client: 1, Q: q})
		if err != nil {
			t.Fatalf("%s: cluster: %v", tag, err)
		}
		switch q.Kind {
		case query.KNN:
			compareKNN(t, tag, q, sResp, cResp)
		case query.Join:
			compareJoin(t, tag, sResp, cResp)
		default:
			compareRange(t, tag, sResp, cResp)
		}
	}
}

// TestClusterRouteAllocBudget pins the acceptance bound: a warm query
// routed to a single shard costs at most 2 allocations in the router
// (scatter state, merge buffers, epoch handling and the response itself
// are all pooled). Race instrumentation inflates the measurement itself,
// so the budget runs in a non-race CI step and skips here under -race.
func TestClusterRouteAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budget is measured without -race instrumentation")
	}
	objs := genObjects(2000, 13)
	_, router, cleanup := buildBoth(t, objs, 4)
	defer cleanup()

	// A window inside one shard's region routes to exactly one shard.
	reg := router.part.Regions[0]
	win := geom.RectFromCenter(reg.Center(), reg.Width()/8, reg.Height()/8)
	reqRange := &wire.Request{Client: 1, Q: query.NewRange(win)}
	reqKNN := &wire.Request{Client: 1, Q: query.NewKNN(reg.Center(), 4)}

	warm := func(req *wire.Request) {
		for i := 0; i < 16; i++ {
			resp, err := router.RoundTrip(req)
			if err != nil {
				t.Fatal(err)
			}
			router.ReleaseResponse(resp)
		}
	}
	warm(reqRange)
	warm(reqKNN)

	before := router.Stats().SingleShard.Load()
	resp, err := router.RoundTrip(reqRange)
	if err != nil {
		t.Fatal(err)
	}
	router.ReleaseResponse(resp)
	if router.Stats().SingleShard.Load() != before+1 {
		t.Fatal("range window did not route to a single shard; fix the test geometry")
	}

	allocs := testing.AllocsPerRun(200, func() {
		resp, err := router.RoundTrip(reqRange)
		if err != nil {
			t.Fatal(err)
		}
		router.ReleaseResponse(resp)
	})
	if allocs > 2 {
		t.Errorf("warm single-shard range: %.1f allocs/op, budget 2", allocs)
	}
}
