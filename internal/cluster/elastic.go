package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Elastic topology: online shard split and merge (docs/ELASTIC.md).
//
// A split moves the hot half of one shard's region onto a freshly spawned
// shard without ever stopping the cluster or flushing its clients:
//
//  1. Arm: under a brief write fence the router installs a handover window
//     for the source shard. From then on every acked update batch bound for
//     it is recorded, and update issuance to that one shard serializes on
//     the window's lock so the record order is exactly the shard's apply
//     order. Queries are untouched.
//  2. Snapshot: holding the window lock (so no batch is mid-flight), the
//     router reads the shard's full object set. Everything recorded after
//     this point is the "WAL tail" the snapshot does not contain.
//  3. Plane: the split cut is the median of the moving shard's object
//     centers along the longer axis — the same balanced-count rule
//     MakePartition uses, applied to one leaf.
//  4. Transfer: the losing half bulk-loads into a new R*-tree, round-trips
//     through the packed image codec (the same bytes a WAL checkpoint or a
//     wire transfer would carry), and comes up as a new shard server with
//     its own WAL and optional standby (Spawner).
//  5. Cutover: the write fence drains every in-flight request against the
//     old owner, the recorded tail replays onto the new shard (re-routed
//     against the post-split partition), the moved objects are deleted from
//     the source through its ordinary update path — which bumps its epoch
//     and writes the invalidation log entries that tell caching clients
//     their cuts of the moved region are stale — and the new partition,
//     endpoint, and metadata install atomically. No client flush: epoch
//     vectors for the new slot zero-pad (epoch.go), and the changed root
//     set surfaces as a virtual-root invalidation on each client's next
//     response.
//
// A merge is the symmetric, simpler path: under one write fence the losing
// sibling's objects bulk-insert into the survivor, the KD parent cut
// disappears, and the slot dies. Merging must flush all clients — the dead
// slot's node ids can never be invalidated individually once its server is
// gone — so it is the split's cheap-to-rare counterpart.
type handoverState struct {
	from int
	mu   sync.Mutex
	// entries are the acked update batches applied to the source shard
	// since the window armed, in apply order (issuance serializes on mu).
	entries []handoverEntry
	// boundary is how many leading entries the object snapshot already
	// contains; replay starts after it.
	boundary int
}

type handoverEntry struct {
	ops []wire.UpdateOp // acked operations only, as the source applied them
}

// record appends a batch's acked operations. Caller holds ho.mu (issueWave
// serializes the source shard's updates on it during the window).
func (ho *handoverState) record(ops []wire.UpdateOp, acked []bool) {
	var kept []wire.UpdateOp
	for i, op := range ops {
		if i < len(acked) && acked[i] {
			kept = append(kept, op)
		}
	}
	if len(kept) > 0 {
		ho.entries = append(ho.entries, handoverEntry{ops: kept})
	}
}

// Spawner creates and retires shard servers for elastic topology changes.
// InProcess implements it; a multi-process deployment would provision and
// decommission shard processes here.
type Spawner interface {
	// Spawn stands up a new shard server for slot t seeded with items
	// (payload sizes via size), returning its router-facing Shard. The
	// shard is not yet reachable by clients; the router installs it at
	// cutover.
	Spawn(t int, items []rtree.Item, size func(rtree.ObjectID) int) (Shard, error)
	// Retire tears down slot t's server after the topology no longer
	// routes to it.
	Retire(t int)
}

// errShardRetired answers any straggler round trip to a merged-away slot.
var errShardRetired = errors.New("cluster: shard slot retired by merge")

type retiredTransport struct{}

func (retiredTransport) RoundTrip(*wire.Request) (*wire.Response, error) {
	return nil, errShardRetired
}

// everything is the range window matching every object.
var everything = geom.Rect{
	MinX: math.Inf(-1), MinY: math.Inf(-1),
	MaxX: math.Inf(1), MaxY: math.Inf(1),
}

// allObjects reads a shard's complete object set through one sub-query.
func (r *Router) allObjects(s int) (*wire.Response, error) {
	return r.roundTripShard(s, &wire.Request{
		Q:       query.NewRange(everything),
		NoIndex: true,
	})
}

// splitPlane picks the axis and cut dividing the centers into two non-empty
// halves at the median, preferring the axis with the larger center spread.
// ok is false when every center coincides (nothing to split).
func splitPlane(objs []wire.ObjectRep) (axis int, cut float64, ok bool) {
	xs := make([]float64, len(objs))
	ys := make([]float64, len(objs))
	for i, o := range objs {
		c := o.MBR.Center()
		xs[i], ys[i] = c.X, c.Y
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	spreadX := xs[len(xs)-1] - xs[0]
	spreadY := ys[len(ys)-1] - ys[0]
	order := [2]int{0, 1}
	if spreadY > spreadX {
		order = [2]int{1, 0}
	}
	for _, ax := range order {
		coords := xs
		if ax == 1 {
			coords = ys
		}
		// Median cut, nudged up past duplicates so the < cut side keeps at
		// least one center (points at the cut go right).
		i := len(coords) / 2
		for i < len(coords) && coords[i] <= coords[0] {
			i++
		}
		if i < len(coords) {
			return ax, coords[i], true
		}
	}
	return 0, 0, false
}

// translateOps re-routes one recorded batch against the post-split
// partition: the subset of effects landing in the new shard's region
// becomes that shard's replay batch. owned tracks the object set the new
// shard will end up holding (and each object's current rectangle), for the
// cutover's ownership delete against the source.
func translateOps(part *Partition, t int, ops []wire.UpdateOp, sizeOf func(rtree.ObjectID) int, owned map[rtree.ObjectID]geom.Rect) []wire.UpdateOp {
	var out []wire.UpdateOp
	for _, op := range ops {
		switch op.Kind {
		case wire.UpdateInsert:
			if part.LocateRect(op.To) == t {
				out = append(out, op)
				owned[op.Obj] = op.To
			}
		case wire.UpdateDelete:
			if part.LocateRect(op.From) == t {
				out = append(out, op)
				delete(owned, op.Obj)
			}
		case wire.UpdateMove:
			fromT := part.LocateRect(op.From) == t
			toT := part.LocateRect(op.To) == t
			switch {
			case fromT && toT:
				out = append(out, op)
				owned[op.Obj] = op.To
			case toT:
				out = append(out, wire.UpdateOp{
					Kind: wire.UpdateInsert, Obj: op.Obj, To: op.To,
					Size: sizeOf(op.Obj),
				})
				owned[op.Obj] = op.To
			case fromT:
				out = append(out, wire.UpdateOp{
					Kind: wire.UpdateDelete, Obj: op.Obj, From: op.From,
				})
				delete(owned, op.Obj)
			}
		}
	}
	return out
}

// clearHandover disarms the split window (abort path).
func (r *Router) clearHandover() {
	r.topo.Lock()
	r.ho = nil
	r.topo.Unlock()
}

// SplitShard splits shard s's region in two online: the half with the
// larger coordinates moves to a freshly spawned shard slot, in-flight
// requests drain against the old owner at the fence, updates accepted
// during the transfer replay onto the new shard before it takes over, and
// no client is flushed — cached cuts of the moved region invalidate through
// the source shard's ordinary epoch protocol, and the topology change
// itself surfaces as a virtual-root invalidation. Split operations
// serialize with each other and with MergeShards.
func (r *Router) SplitShard(s int, sp Spawner) error {
	r.topoOpMu.Lock()
	defer r.topoOpMu.Unlock()

	// r.part is stable here: only topology operations replace it, and they
	// all hold topoOpMu.
	if !r.part.Live(s) {
		return fmt.Errorf("cluster: split: shard %d is not live", s)
	}
	t := len(r.shards) // always a fresh slot: node ids are never reused
	if t >= MaxShards {
		return fmt.Errorf("cluster: split: slot count %d exhausted the %d-slot namespace", t, MaxShards)
	}
	failoversBefore := r.stats.Shard(s).Failovers.Load()

	// Arm the handover window.
	ho := &handoverState{from: s}
	r.topo.Lock()
	r.ho = ho
	r.topo.Unlock()

	// Snapshot under the window lock: no update batch is mid-flight on s,
	// so entries recorded before the boundary are fully inside the
	// snapshot and entries after it are fully outside.
	ho.mu.Lock()
	resp, err := r.allObjects(s)
	if err != nil {
		ho.mu.Unlock()
		r.clearHandover()
		return fmt.Errorf("cluster: split: snapshot shard %d: %w", s, err)
	}
	objs := append([]wire.ObjectRep(nil), resp.Objects...)
	r.release(s, resp)
	ho.boundary = len(ho.entries)
	ho.mu.Unlock()

	if len(objs) < 2 {
		r.clearHandover()
		return fmt.Errorf("cluster: split: shard %d owns %d objects; nothing to split", s, len(objs))
	}
	axis, cut, ok := splitPlane(objs)
	if !ok {
		r.clearHandover()
		return fmt.Errorf("cluster: split: shard %d's object centers coincide", s)
	}
	newPart, err := r.part.SplitLeaf(s, t, axis, cut)
	if err != nil {
		r.clearHandover()
		return err
	}

	// The losing half: everything the new partition routes to slot t.
	owned := make(map[rtree.ObjectID]geom.Rect)
	items := make([]rtree.Item, 0, len(objs)/2)
	for _, o := range objs {
		if newPart.LocateRect(o.MBR) == t {
			owned[o.ID] = o.MBR
			items = append(items, rtree.Item{Obj: o.ID, MBR: o.MBR})
		}
	}
	if len(owned) == 0 || len(owned) == len(objs) {
		r.clearHandover()
		return fmt.Errorf("cluster: split: plane left shard %d with an empty side", s)
	}

	// Transfer: spawn the new shard from the packed move-set image.
	shard, err := sp.Spawn(t, items, r.sizeOf)
	if err != nil {
		r.clearHandover()
		return fmt.Errorf("cluster: split: spawn slot %d: %w", t, err)
	}

	// replayWave pushes recorded tail entries onto the new shard in record
	// order (== the source's apply order).
	replayWave := func(entries []handoverEntry) error {
		for _, e := range entries {
			tOps := translateOps(newPart, t, e.ops, r.sizeOf, owned)
			if len(tOps) == 0 {
				continue
			}
			tresp, err := shard.T.RoundTrip(&wire.Request{Updates: tOps})
			if err != nil {
				return err
			}
			if shard.Release != nil {
				shard.Release(tresp)
			}
		}
		return nil
	}

	// Catch-up: drain the recorded tail in waves while requests still flow.
	// The new shard is not yet routable, so replaying here is invisible to
	// clients — each wave shrinks the fenced, client-blocking replay below
	// to just the updates that arrived during the previous wave. Entries is
	// append-only under ho.mu, so a snapshot of its prefix stays valid after
	// the unlock.
	replayed := ho.boundary
	for round := 0; round < 8; round++ {
		ho.mu.Lock()
		pend := ho.entries[replayed:]
		ho.mu.Unlock()
		if len(pend) == 0 {
			break
		}
		if err := replayWave(pend); err != nil {
			r.clearHandover()
			sp.Retire(t)
			return fmt.Errorf("cluster: split: replay tail onto slot %d: %w", t, err)
		}
		replayed += len(pend)
	}

	// Cutover: fence out every request, replay the last sliver of the tail,
	// move ownership.
	fence := time.Now()
	r.topo.Lock()
	abort := func(why error) error {
		r.ho = nil
		r.topo.Unlock()
		sp.Retire(t)
		return why
	}
	if r.stats.Shard(s).Failovers.Load() != failoversBefore {
		// A replica promotion mid-transfer may have lost acked batches the
		// handover window recorded; the replay would diverge. Start over.
		return abort(fmt.Errorf("cluster: split: shard %d failed over during transfer; aborted", s))
	}
	if err := replayWave(ho.entries[replayed:]); err != nil {
		return abort(fmt.Errorf("cluster: split: replay tail onto slot %d: %w", t, err))
	}
	if len(owned) == 0 {
		// The tail deleted the whole moving half; nothing to hand over.
		return abort(fmt.Errorf("cluster: split: moving half emptied during transfer"))
	}

	// Catalog the new shard post-replay for its root and epoch.
	tcat, err := shard.T.RoundTrip(&wire.Request{Catalog: true})
	if err != nil {
		return abort(fmt.Errorf("cluster: split: catalog slot %d: %w", t, err))
	}
	tMeta := &shardMeta{rootID: tcat.RootID, rootMBR: tcat.RootMBR, epoch: tcat.Epoch}
	if shard.Release != nil {
		shard.Release(tcat)
	}

	// Install the topology: grow the slot arrays, then point the partition
	// at the post-split geometry.
	r.shards = append(r.shards, shard)
	ep := &atomic.Pointer[endpoint]{}
	ep.Store(&endpoint{t: shard.T, release: shard.Release})
	r.eps = append(r.eps, ep)
	r.failMu = append(r.failMu, &sync.Mutex{})
	r.consecErr = append(r.consecErr, &atomic.Int32{})
	r.meta = append(r.meta, tMeta)
	r.part = newPart
	r.epochs.nshards = len(r.shards)
	r.stats.Grow(len(r.shards))

	// Delete the moved objects from the source through its ordinary update
	// path: its epoch advances and its invalidation log picks up the moved
	// region, so caching clients invalidate their cuts of it on their next
	// response — the epoch-fenced crossing window.
	del := make([]wire.UpdateOp, 0, len(owned))
	for id, mbr := range owned {
		del = append(del, wire.UpdateOp{Kind: wire.UpdateDelete, Obj: id, From: mbr})
	}
	sort.Slice(del, func(i, j int) bool { return del[i].Obj < del[j].Obj })
	dresp, err := r.roundTripShard(s, &wire.Request{Updates: del})
	if err != nil {
		// The new shard already owns the region; the stale copies on the
		// source will be dropped by a retry or shadowed by dedup until
		// then. Surface the error but keep the installed topology.
		r.ho = nil
		r.stats.Splits.Add(1)
		r.stats.HandoverNanos.Add(time.Since(fence).Nanoseconds())
		r.topo.Unlock()
		return fmt.Errorf("cluster: split: ownership delete on shard %d: %w", s, err)
	}
	r.observe(s, dresp)
	r.release(s, dresp)

	moved := int64(len(owned))
	r.stats.Shard(s).Objects.Add(-moved)
	tc := r.stats.Shard(t)
	tc.Objects.Store(moved)
	tc.Dead.Store(false)
	r.stats.Splits.Add(1)
	r.stats.HandoverNanos.Add(time.Since(fence).Nanoseconds())
	r.ho = nil
	r.topo.Unlock()
	return nil
}

// MergeShards folds shard t back into its KD sibling s: one write fence
// covers reading t's objects, bulk-inserting them into s, and collapsing
// the parent cut. The dead slot's node ids can never be invalidated once
// its server retires, so a merge flushes every tracked client — the exact
// cost split avoids, which is why the rebalancer's merge thresholds carry
// hysteresis. The slot is never reused.
func (r *Router) MergeShards(s, t int, sp Spawner) error {
	r.topoOpMu.Lock()
	defer r.topoOpMu.Unlock()

	if sib, ok := r.part.SiblingOf(t); !ok || sib != s {
		return fmt.Errorf("cluster: merge: shards %d and %d are not sibling leaves", s, t)
	}
	newPart, err := r.part.MergeLeaves(s, t)
	if err != nil {
		return err
	}

	fence := time.Now()
	r.topo.Lock()
	resp, err := r.allObjects(t)
	if err != nil {
		r.topo.Unlock()
		return fmt.Errorf("cluster: merge: snapshot shard %d: %w", t, err)
	}
	ins := make([]wire.UpdateOp, 0, len(resp.Objects))
	for _, o := range resp.Objects {
		sz := o.Size
		if sz <= 0 {
			sz = r.sizeOf(o.ID)
		}
		ins = append(ins, wire.UpdateOp{Kind: wire.UpdateInsert, Obj: o.ID, To: o.MBR, Size: sz})
	}
	r.release(t, resp)
	sort.Slice(ins, func(i, j int) bool { return ins[i].Obj < ins[j].Obj })
	if len(ins) > 0 {
		iresp, err := r.roundTripShard(s, &wire.Request{Updates: ins})
		if err != nil {
			r.topo.Unlock()
			return fmt.Errorf("cluster: merge: transfer into shard %d: %w", s, err)
		}
		r.observe(s, iresp)
		r.release(s, iresp)
	}

	// Retire the slot: dead metadata (classification skips it, stale refs
	// into it drop), an erroring endpoint, and the collapsed partition.
	m := r.meta[t]
	m.mu.Lock()
	m.rootID = rtree.InvalidNode
	m.rootMBR = geom.Rect{}
	m.rootLevel = 0
	m.epoch = 0
	m.mu.Unlock()
	r.eps[t].Store(&endpoint{t: retiredTransport{}})
	r.part = newPart
	// Clients hold virtual node ids of a server that is about to disappear;
	// nothing can ever invalidate those ids individually, so everyone
	// rebuilds from scratch.
	r.epochs.flushAll()

	r.stats.Shard(s).Objects.Add(int64(len(ins)))
	tc := r.stats.Shard(t)
	tc.Objects.Store(0)
	tc.QPSMilli.Store(0)
	tc.Dead.Store(true)
	r.stats.Merges.Add(1)
	r.stats.HandoverNanos.Add(time.Since(fence).Nanoseconds())
	r.topo.Unlock()

	sp.Retire(t)
	return nil
}
