package cluster

import (
	"sync"
	"sync/atomic"

	"repro/internal/rtree"
	"repro/internal/wire"
)

// Epoch virtualization. Every shard runs the single-node epoch protocol —
// a monotone counter bumped per published snapshot, with an invalidation
// log window behind it — but a client tracks exactly one epoch. The router
// therefore keeps, per client, a short ring of (virtual epoch -> per-shard
// epoch vector) entries: the virtual epoch a response carries names the
// vector of shard epochs whose invalidations that client has been handed.
//
// The vector advances only for shards a request actually touched: a query
// that fanned out to shard 2 alone delivers shard 2's invalidation window
// and leaves every other component where the client last stood, so the next
// request to any other shard still opens that shard's window from the right
// place. Under-claiming is always safe (an invalidation delivered twice is
// idempotent); over-claiming never happens by construction.
//
// The ring absorbs pipelining: concurrent in-flight requests from one client
// all quote the same virtual epoch, and their responses register sibling
// entries rather than invalidating each other. A client that quotes an epoch
// that has fallen off its ring — or one the router has never seen, e.g.
// after a router restart or table eviction — gets FlushAll, exactly like a
// single-node client falling off the update-log horizon.
//
// Memory model (docs/CLUSTER.md): O(clients x ring x shards) integers,
// bounded by per-lock-shard client caps with eviction; node re-keying
// itself is arithmetic and keeps no table at all.

// epochEntry is one registered virtual epoch of one client.
type epochEntry struct {
	virtual uint64
	vec     []uint64       // per-shard epochs covered through this entry
	roots   []rtree.NodeID // shard root ids the client's cached virtual root reflects
}

// clientEpochs is the per-client ring, guarded by its table shard's lock.
type clientEpochs struct {
	next uint64       // next virtual epoch to assign
	ring []epochEntry // oldest first
}

const (
	// epochLockShards spreads the client table over independent locks.
	epochLockShards = 32
	// defaultEpochRing is how many recent virtual epochs a client may
	// quote before the router answers FlushAll.
	defaultEpochRing = 32
	// defaultMaxClients caps tracked clients per lock shard; beyond it an
	// arbitrary client is evicted (and flushed on return).
	defaultMaxClients = 4096
)

// epochShard is one lock domain of the client table.
type epochShard struct {
	mu sync.Mutex
	m  map[wire.ClientID]*clientEpochs
}

// epochTable maps client virtual epochs to per-shard epoch vectors.
type epochTable struct {
	nshards    int
	ring       int
	maxClients int // per lock shard
	// gen counts table-wide flushes (replica failovers). Requests capture it
	// before resolving their epoch base; a commit quoting a stale generation
	// is refused, so a response computed against pre-failover state can never
	// register a vector the promoted shard no longer backs.
	gen    atomic.Uint64
	shards [epochLockShards]epochShard
}

func newEpochTable(nshards, ring, maxClients int) *epochTable {
	if ring <= 0 {
		ring = defaultEpochRing
	}
	if maxClients <= 0 {
		maxClients = defaultMaxClients
	}
	t := &epochTable{nshards: nshards, ring: ring, maxClients: maxClients}
	for i := range t.shards {
		t.shards[i].m = make(map[wire.ClientID]*clientEpochs)
	}
	return t
}

func (t *epochTable) shard(id wire.ClientID) *epochShard {
	return &t.shards[uint32(id)%epochLockShards]
}

// generation returns the current flush generation; capture it before lookup
// and pass it back to commit.
func (t *epochTable) generation() uint64 { return t.gen.Load() }

// flushAll drops every tracked client, forcing FlushAll on their next
// request, and bumps the generation so in-flight commits are refused. The
// generation bumps before the maps clear: a concurrent commit either sees
// the new generation and aborts, or registered its entry early enough for
// the clear to remove it.
func (t *epochTable) flushAll() {
	t.gen.Add(1)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		sh.m = make(map[wire.ClientID]*clientEpochs)
		sh.mu.Unlock()
	}
}

// lookup copies the vector and root set registered under (client, virtual)
// into dst slices (each len nshards). It reports false when the client or
// the virtual epoch is unknown — the caller must then flush the client.
//
// A stored vector may be shorter than dst when the cluster grew (an elastic
// split adds a slot without flushing clients): the new slots pad with epoch
// 0 — always-safe under-claiming, the new shard's whole history is "not yet
// delivered" — and root InvalidNode, which can never equal the live root,
// so the client's very next response carries the virtual-root invalidation
// the topology change owes it.
func (t *epochTable) lookup(id wire.ClientID, virtual uint64, dstVec []uint64, dstRoots []rtree.NodeID) bool {
	sh := t.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.m[id]
	if !ok {
		return false
	}
	for i := len(st.ring) - 1; i >= 0; i-- {
		if st.ring[i].virtual == virtual {
			n := copy(dstVec, st.ring[i].vec)
			for j := n; j < len(dstVec); j++ {
				dstVec[j] = 0
			}
			n = copy(dstRoots, st.ring[i].roots)
			for j := n; j < len(dstRoots); j++ {
				dstRoots[j] = rtree.InvalidNode
			}
			return true
		}
	}
	return false
}

// commit registers the vector a response delivered and returns the virtual
// epoch to stamp on it. An entry with an identical vector and root set is
// reused (the common no-update steady state registers nothing and allocates
// nothing); otherwise a new entry is appended after the base and the ring is
// trimmed. baseVirtual is the epoch the request quoted; the returned epoch
// is always >= it, and never 0 unless the whole cluster is still at epoch 0.
// gen is the generation the request captured before resolving its base; the
// second return is false when a flushAll intervened and the caller must
// flush the client instead of committing.
func (t *epochTable) commit(id wire.ClientID, baseVirtual uint64, vec []uint64, roots []rtree.NodeID, gen uint64) (uint64, bool) {
	sh := t.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if t.gen.Load() != gen {
		return 0, false
	}
	st, ok := sh.m[id]
	if !ok {
		if baseVirtual == 0 && allZero(vec) {
			// Nothing has ever changed: keep epoch 0 and track no state,
			// so an update-free cluster never grows the client table.
			return 0, true
		}
		if len(sh.m) >= t.maxClients {
			for evict := range sh.m {
				delete(sh.m, evict)
				break
			}
		}
		st = &clientEpochs{next: baseVirtual + 1}
		sh.m[id] = st
	}
	for i := len(st.ring) - 1; i >= 0; i-- {
		e := &st.ring[i]
		if equalVec(e.vec, vec) && equalRoots(e.roots, roots) {
			return e.virtual, true
		}
	}
	v := st.next
	if v <= baseVirtual {
		v = baseVirtual + 1
	}
	st.next = v + 1
	st.ring = append(st.ring, epochEntry{
		virtual: v,
		vec:     append([]uint64(nil), vec...),
		roots:   append([]rtree.NodeID(nil), roots...),
	})
	if len(st.ring) > t.ring {
		st.ring = st.ring[len(st.ring)-t.ring:]
	}
	return v, true
}

func allZero(v []uint64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

func equalVec(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalRoots(a, b []rtree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
