package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rnd(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// randRect draws a random rectangle inside the unit square.
func randRect(r *rand.Rand) Rect {
	x1, x2 := r.Float64(), r.Float64()
	y1, y2 := r.Float64(), r.Float64()
	return Rect{math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2)}
}

func randPoint(r *rand.Rand) Point { return Point{r.Float64(), r.Float64()} }

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 2, 1}
	if got := r.Area(); got != 2 {
		t.Errorf("Area = %v, want 2", got)
	}
	if got := r.Margin(); got != 3 {
		t.Errorf("Margin = %v, want 3", got)
	}
	if got := r.Center(); got != (Point{1, 0.5}) {
		t.Errorf("Center = %v, want (1,0.5)", got)
	}
	if r.Width() != 2 || r.Height() != 1 {
		t.Errorf("Width/Height = %v/%v, want 2/1", r.Width(), r.Height())
	}
	if !r.Valid() {
		t.Error("rect should be valid")
	}
	if (Rect{1, 0, 0, 1}).Valid() {
		t.Error("inverted rect should be invalid")
	}
}

func TestRectFromHelpers(t *testing.T) {
	p := Point{0.3, 0.7}
	pr := RectFromPoint(p)
	if pr.Area() != 0 || !pr.ContainsPoint(p) {
		t.Errorf("RectFromPoint wrong: %v", pr)
	}
	cr := RectFromCenter(p, 0.2, 0.4)
	if got := cr.Center(); math.Abs(got.X-p.X) > 1e-12 || math.Abs(got.Y-p.Y) > 1e-12 {
		t.Errorf("RectFromCenter center = %v, want %v", got, p)
	}
	if math.Abs(cr.Width()-0.2) > 1e-12 || math.Abs(cr.Height()-0.4) > 1e-12 {
		t.Errorf("RectFromCenter dims = %v x %v", cr.Width(), cr.Height())
	}
}

func TestIntersection(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	ix, ok := a.Intersection(b)
	if !ok || ix != (Rect{1, 1, 2, 2}) {
		t.Errorf("Intersection = %v,%v", ix, ok)
	}
	c := Rect{5, 5, 6, 6}
	if _, ok := a.Intersection(c); ok {
		t.Error("disjoint rects should not intersect")
	}
	// Touching edges intersect with zero area.
	d := Rect{2, 0, 3, 2}
	ix, ok = a.Intersection(d)
	if !ok || ix.Area() != 0 {
		t.Errorf("touching rects: %v,%v", ix, ok)
	}
}

func TestContains(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	if !a.Contains(Rect{1, 1, 2, 2}) {
		t.Error("inner rect should be contained")
	}
	if !a.Contains(a) {
		t.Error("rect contains itself")
	}
	if a.Contains(Rect{1, 1, 5, 2}) {
		t.Error("overhanging rect must not be contained")
	}
}

func TestMinDistKnownValues(t *testing.T) {
	r := Rect{1, 1, 2, 2}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{1.5, 1.5}, 0},              // inside
		{Point{0, 1.5}, 1},                // left
		{Point{3, 1.5}, 1},                // right
		{Point{1.5, 0}, 1},                // below
		{Point{0, 0}, math.Sqrt2},         // corner
		{Point{3, 3}, math.Sqrt2},         // opposite corner
		{Point{1, 1}, 0},                  // on boundary
		{Point{2.5, 2.5}, math.Sqrt(0.5)}, // diagonal offset
	}
	for _, c := range cases {
		if got := MinDist(c.p, r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDist(%v,%v) = %v, want %v", c.p, r, got, c.want)
		}
	}
}

func TestRectMinDistKnownValues(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	cases := []struct {
		b    Rect
		want float64
	}{
		{Rect{0.5, 0.5, 2, 2}, 0}, // overlap
		{Rect{2, 0, 3, 1}, 1},     // side by side
		{Rect{2, 2, 3, 3}, math.Sqrt2},
		{Rect{1, 1, 2, 2}, 0}, // touching corner
	}
	for _, c := range cases {
		if got := RectMinDist(a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RectMinDist(%v,%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := RectMinDist(c.b, a); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RectMinDist not symmetric for %v", c.b)
		}
	}
}

func TestSubtract(t *testing.T) {
	r := Rect{0, 0, 4, 4}
	// Full coverage -> empty remainder.
	if got := r.Subtract(Rect{-1, -1, 5, 5}); len(got) != 0 {
		t.Errorf("covered remainder = %v", got)
	}
	// Disjoint -> r itself.
	if got := r.Subtract(Rect{10, 10, 11, 11}); len(got) != 1 || got[0] != r {
		t.Errorf("disjoint remainder = %v", got)
	}
	// Center hole -> 4 pieces that tile r minus the hole.
	hole := Rect{1, 1, 2, 2}
	parts := r.Subtract(hole)
	if len(parts) != 4 {
		t.Fatalf("center hole pieces = %d, want 4", len(parts))
	}
	var area float64
	for _, p := range parts {
		if !p.Valid() {
			t.Errorf("invalid piece %v", p)
		}
		if !r.Contains(p) {
			t.Errorf("piece %v outside r", p)
		}
		if p.OverlapArea(hole) > 1e-12 {
			t.Errorf("piece %v overlaps hole", p)
		}
		area += p.Area()
	}
	if want := r.Area() - hole.Area(); math.Abs(area-want) > 1e-9 {
		t.Errorf("pieces area = %v, want %v", area, want)
	}
}

// Property: Union contains both inputs and is the smallest such rect
// (its corners come from the inputs).
func TestUnionProperty(t *testing.T) {
	r := rnd(1)
	f := func() bool {
		a, b := randRect(r), randRect(r)
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		return u.Area() >= a.Area() && u.Area() >= b.Area()
	}
	if err := quick.Check(func(struct{}) bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: MinDist(p, r) <= Dist(p, q) for every q in r, and MaxDist is an
// upper bound; verified against random sample points inside r.
func TestMinMaxDistEnvelopeProperty(t *testing.T) {
	r := rnd(2)
	f := func() bool {
		rect := randRect(r)
		p := randPoint(r)
		lo, hi := MinDist(p, rect), MaxDist(p, rect)
		for i := 0; i < 16; i++ {
			q := Point{
				rect.MinX + r.Float64()*rect.Width(),
				rect.MinY + r.Float64()*rect.Height(),
			}
			d := Dist(p, q)
			if d < lo-1e-9 || d > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(struct{}) bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: RectMinDist lower-bounds the distance between any contained points.
func TestRectMinDistLowerBoundProperty(t *testing.T) {
	r := rnd(3)
	f := func() bool {
		a, b := randRect(r), randRect(r)
		lo := RectMinDist(a, b)
		for i := 0; i < 8; i++ {
			pa := Point{a.MinX + r.Float64()*a.Width(), a.MinY + r.Float64()*a.Height()}
			pb := Point{b.MinX + r.Float64()*b.Width(), b.MinY + r.Float64()*b.Height()}
			if Dist(pa, pb) < lo-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(struct{}) bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Subtract pieces are disjoint from s, inside r, and their area
// plus the overlap equals the area of r.
func TestSubtractProperty(t *testing.T) {
	r := rnd(4)
	f := func() bool {
		a, b := randRect(r), randRect(r)
		parts := a.Subtract(b)
		var area float64
		for _, p := range parts {
			if !p.Valid() || !a.Contains(p) {
				return false
			}
			if p.OverlapArea(b) > 1e-9 {
				return false
			}
			area += p.Area()
		}
		// Pairwise disjoint.
		for i := 0; i < len(parts); i++ {
			for j := i + 1; j < len(parts); j++ {
				if parts[i].OverlapArea(parts[j]) > 1e-12 {
					return false
				}
			}
		}
		return math.Abs(area+a.OverlapArea(b)-a.Area()) < 1e-9
	}
	if err := quick.Check(func(struct{}) bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Intersects is symmetric and consistent with Intersection.
func TestIntersectsConsistencyProperty(t *testing.T) {
	r := rnd(5)
	f := func() bool {
		a, b := randRect(r), randRect(r)
		i1 := a.Intersects(b)
		i2 := b.Intersects(a)
		_, ok := a.Intersection(b)
		return i1 == i2 && i1 == ok
	}
	if err := quick.Check(func(struct{}) bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEnlargement(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	if got := a.Enlargement(Rect{0.2, 0.2, 0.8, 0.8}); got != 0 {
		t.Errorf("contained enlargement = %v, want 0", got)
	}
	if got := a.Enlargement(Rect{0, 0, 2, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("enlargement = %v, want 1", got)
	}
}

func TestStringers(t *testing.T) {
	if s := (Rect{0, 0, 1, 1}).String(); s == "" {
		t.Error("empty Rect string")
	}
	if s := (Point{1, 2}).String(); s == "" {
		t.Error("empty Point string")
	}
}
