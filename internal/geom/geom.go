// Package geom provides the planar geometry primitives used throughout the
// repository: points, axis-aligned rectangles (MBRs), and the distance and
// area algebra required by R-trees and spatial query processing.
//
// All coordinates live in the unit square in the experiments, but nothing in
// this package assumes that; rectangles may be degenerate (zero width and/or
// height), which is how point objects are represented.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Rect is a closed axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY].
// A Rect with Min == Max on both axes is a point. The zero Rect is the
// degenerate rectangle at the origin.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// R is shorthand for Rect{minX, minY, maxX, maxY}.
func R(minX, minY, maxX, maxY float64) Rect {
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// RectFromPoint returns the degenerate rectangle containing exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{p.X, p.Y, p.X, p.Y}
}

// RectFromCenter returns the rectangle of width w and height h centered at c.
func RectFromCenter(c Point, w, h float64) Rect {
	return Rect{c.X - w/2, c.Y - h/2, c.X + w/2, c.Y + h/2}
}

// Valid reports whether r has Min <= Max on both axes.
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r. Degenerate rectangles have zero area.
func (r Rect) Area() float64 {
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Margin returns half the perimeter of r (the R*-tree margin metric).
func (r Rect) Margin() float64 {
	return (r.MaxX - r.MinX) + (r.MaxY - r.MinY)
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		math.Min(r.MinX, s.MinX),
		math.Min(r.MinY, s.MinY),
		math.Max(r.MaxX, s.MaxX),
		math.Max(r.MaxY, s.MaxY),
	}
}

// Intersects reports whether r and s share at least one point.
// Touching edges count as intersection (closed rectangles).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersection returns the common region of r and s and whether it is
// non-empty. When the rectangles do not intersect the returned Rect is the
// zero value.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	return Rect{
		math.Max(r.MinX, s.MinX),
		math.Max(r.MinY, s.MinY),
		math.Min(r.MaxX, s.MaxX),
		math.Min(r.MaxY, s.MaxY),
	}, true
}

// Contains reports whether s lies entirely inside r (boundaries included).
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether p lies inside r (boundaries included).
func (r Rect) ContainsPoint(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// Enlargement returns the area increase of r needed to also cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// OverlapArea returns the area of the intersection of r and s
// (zero when they do not intersect).
func (r Rect) OverlapArea(s Rect) float64 {
	ix, ok := r.Intersection(s)
	if !ok {
		return 0
	}
	return ix.Area()
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// DistSq returns the squared Euclidean distance between two points.
func DistSq(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// MinDist returns the minimum Euclidean distance from point p to rectangle r
// (zero when p is inside r). This is the MINDIST metric of best-first kNN
// search on R-trees.
func MinDist(p Point, r Rect) float64 {
	return math.Sqrt(MinDistSq(p, r))
}

// MinDistSq returns the squared minimum distance from p to r.
func MinDistSq(p Point, r Rect) float64 {
	dx := axisDist(p.X, r.MinX, r.MaxX)
	dy := axisDist(p.Y, r.MinY, r.MaxY)
	return dx*dx + dy*dy
}

// MaxDist returns the maximum Euclidean distance from point p to any point
// of rectangle r (the MAXDIST pruning metric).
func MaxDist(p Point, r Rect) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// RectMinDist returns the minimum Euclidean distance between any point of r
// and any point of s (zero when they intersect). It is the pruning metric
// for distance joins over R-tree node pairs.
func RectMinDist(r, s Rect) float64 {
	dx := gapDist(r.MinX, r.MaxX, s.MinX, s.MaxX)
	dy := gapDist(r.MinY, r.MaxY, s.MinY, s.MaxY)
	return math.Hypot(dx, dy)
}

// axisDist returns the 1-D distance from v to the interval [lo, hi].
func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// gapDist returns the 1-D distance between intervals [alo,ahi] and [blo,bhi]
// (zero when they overlap).
func gapDist(alo, ahi, blo, bhi float64) float64 {
	switch {
	case ahi < blo:
		return blo - ahi
	case bhi < alo:
		return alo - bhi
	default:
		return 0
	}
}

// Clip returns r clipped to the bounds rectangle.
// The boolean is false when r lies entirely outside bounds.
func (r Rect) Clip(bounds Rect) (Rect, bool) {
	return r.Intersection(bounds)
}

// Subtract returns the parts of r not covered by s, decomposed into at most
// four disjoint rectangles. It is the remainder-region primitive of the
// semantic-caching baseline (query trimming). When r and s do not intersect
// the result is r itself; when s covers r the result is empty.
func (r Rect) Subtract(s Rect) []Rect {
	ix, ok := r.Intersection(s)
	if !ok {
		return []Rect{r}
	}
	if ix == r {
		return nil
	}
	out := make([]Rect, 0, 4)
	// Left slab.
	if r.MinX < ix.MinX {
		out = append(out, Rect{r.MinX, r.MinY, ix.MinX, r.MaxY})
	}
	// Right slab.
	if ix.MaxX < r.MaxX {
		out = append(out, Rect{ix.MaxX, r.MinY, r.MaxX, r.MaxY})
	}
	// Bottom slab (between the vertical slabs).
	if r.MinY < ix.MinY {
		out = append(out, Rect{ix.MinX, r.MinY, ix.MaxX, ix.MinY})
	}
	// Top slab.
	if ix.MaxY < r.MaxY {
		out = append(out, Rect{ix.MinX, ix.MaxY, ix.MaxX, r.MaxY})
	}
	return out
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6g,%.6g]x[%.6g,%.6g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6g,%.6g)", p.X, p.Y)
}
