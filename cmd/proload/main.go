// Command proload is the open-loop load generator: it drives a spatial
// database endpoint — a live TCP cluster (one address per shard), a single
// TCP server, or an in-process cluster it builds itself — at a target
// arrival rate with millions of hash-derived simulated mobile users, and
// reports SLO-style results (p50/p99/p999, achieved vs target QPS, error
// and shed counts, byte accounting) per scenario, humanly and as JSON.
//
// Usage:
//
//	proload -inprocess 4 -scenario steady -qps 5000 -duration 5s
//	proload -inprocess 4 -edge -scenario flash-crowd       # through an edge cache
//	proload -inprocess 4 -elastic -scenario shard-skew     # rebalancer splits the hot shard
//	proload -inprocess 4 -elastic-force -scenario steady   # force a mid-run split + merge
//	proload -addr :7001,:7002,:7003,:7004 -scenario all -json out.json
//	proload -check -json out.json -scenario flash-crowd    # exit 1 on SLO fail
//	proload -inprocess 4 -scenario shard-crash-recovery -check  # chaos gate
//	proload -validate out.json                             # schema check only
//	proload -list                                          # print the matrix
//
// Chaos scenarios (load.FaultMatrix: shard-crash-recovery, replica-failover)
// kill and restart shards on a schedule; they require the in-process backend,
// which is built durable for them — per-shard WALs, warm replicas, and a
// hair-trigger failover threshold (docs/DURABILITY.md).
//
// The scenario matrix is defined in internal/load (docs/SCENARIOS.md);
// scripts/bench.sh merges proload JSON into the per-PR BENCH snapshot so CI
// gates on scenario-level regressions.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/edge"
	"repro/internal/elastic"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/wire"
)

func main() {
	var (
		addr         = flag.String("addr", "", "comma-separated shard addresses (one = single server, several = client-side cluster)")
		inprocess    = flag.Int("inprocess", 0, "build an in-process cluster with this many shards instead of dialing")
		edgeOn       = flag.Bool("edge", false, "route all workers through one in-process edge cache tier in front of the cluster (requires -inprocess)")
		nethop       = flag.Bool("nethop", false, "serve the in-process cluster over loopback TCP and cross it per request: workers dial it directly, or under -edge the edge forwards over a pipelined upstream pool while cache hits skip the hop (requires -inprocess)")
		objects      = flag.Int("objects", 20000, "in-process dataset cardinality")
		ds           = flag.String("dataset", "ne", "in-process dataset: ne or rd")
		seed         = flag.Int64("seed", 1, "deterministic operation-stream seed")
		scenario     = flag.String("scenario", "steady", "scenario names, comma-separated, or all")
		qps          = flag.Float64("qps", 2000, "open-loop target arrival rate (all workers combined)")
		duration     = flag.Duration("duration", 3*time.Second, "run length per scenario")
		users        = flag.Int("users", 1_000_000, "simulated user population")
		workers      = flag.Int("workers", 8, "pacing loops / connections")
		timeout      = flag.Duration("timeout", 2*time.Second, "latency above which a completed op also counts as a timeout")
		elasticOn    = flag.Bool("elastic", false, "run a load-driven rebalancer over the in-process cluster during each scenario: hot shards split online, cold sibling pairs merge back (requires -inprocess)")
		elasticForce = flag.Bool("elastic-force", false, "force one online shard split a third of the way into each run and the matching merge at two thirds; exit 1 if either did not complete (requires -inprocess)")
		splitObjects = flag.Int64("split-objects", 0, "rebalancer split threshold in objects per shard (0 derives twice the initial per-shard count)")
		jsonOut      = flag.String("json", "", "write the machine-readable report to this file (- for stdout)")
		check        = flag.Bool("check", false, "exit 1 when any scenario violates its SLO envelope")
		validate     = flag.String("validate", "", "validate an existing proload JSON report against the schema and exit")
		list         = flag.Bool("list", false, "print the scenario matrix and exit")
	)
	flag.Parse()

	if *list {
		for _, sp := range load.Matrix() {
			fmt.Printf("%-20s %s\n", sp.Name, sp.Description)
		}
		for _, sp := range load.FaultMatrix() {
			fmt.Printf("%-20s %s (chaos; needs -inprocess)\n", sp.Name, sp.Description)
		}
		return
	}
	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fatal(err)
		}
		if err := load.ValidateReport(data); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: schema ok\n", *validate)
		return
	}

	specs, err := pickScenarios(*scenario)
	if err != nil {
		fatal(err)
	}

	// Fault-free scenarios share one backend (connections and caches warm
	// across the matrix, as they would in production). Every chaos scenario
	// gets a freshly built durable cluster: faults permanently degrade one —
	// replication stops at the first kill — and a second scenario must not
	// inherit the wreckage of the first. Growth scenarios (GrowUpdates)
	// likewise get their own backend: they permanently inflate and skew the
	// dataset, which would silently slow every scenario that runs after
	// them in the matrix.
	var shared *backend
	defer func() {
		if shared != nil {
			shared.close()
		}
	}()
	acquire := func(sp load.Spec) (*backend, error) {
		if len(sp.Faults) > 0 {
			return connect(*addr, *inprocess, *objects, *ds, *seed, true, *edgeOn, *nethop)
		}
		if sp.GrowUpdates && *addr == "" {
			return connect(*addr, *inprocess, *objects, *ds, *seed, false, *edgeOn, *nethop)
		}
		if shared == nil {
			var err error
			if shared, err = connect(*addr, *inprocess, *objects, *ds, *seed, false, *edgeOn, *nethop); err != nil {
				shared = nil
				return nil, err
			}
		}
		return shared, nil
	}

	var results []*load.Result
	for _, sp := range specs {
		backend, err := acquire(sp)
		if err != nil {
			fatal(err)
		}
		if (*elasticOn || *elasticForce) && backend.cs == nil {
			fatal(fmt.Errorf("-elastic and -elastic-force drive online topology changes and need the in-process backend (-inprocess), not -addr"))
		}
		var rbStop func()
		if *elasticOn {
			rbStop = startRebalancer(backend.cs, *splitObjects, *objects)
		}
		var forceDone chan struct{}
		if *elasticForce {
			forceDone = forceElastic(backend.cs, *duration)
		}
		// Baseline for the post-stop re-sample below: the rebalancer can
		// land an operation between load.Run's own final sample and the
		// stop, so the authoritative delta is taken once it has halted.
		esSample := backend.elasticStats()
		var esSplits, esMerges, esHand int64
		if esSample != nil {
			esSplits, esMerges, esHand = esSample()
		}
		var events atomic.Int64
		r, err := load.Run(load.Config{
			Spec:          sp,
			TargetQPS:     *qps,
			Duration:      *duration,
			Users:         *users,
			Workers:       *workers,
			Seed:          *seed,
			Timeout:       *timeout,
			NewTransport:  backend.newTransport,
			Release:       backend.release,
			ShardErrors:   backend.shardErrors.Load,
			Injector:      backend.injector(),
			FailoverStats: backend.failoverStats,
			EdgeStats:     backend.edgeStats(),
			ElasticStats:  backend.elasticStats(),
			OnEvent: func(worker int, err error) {
				// A dead backend fails every paced op; log the first few and
				// then sample, the counters carry the full tally.
				if n := events.Add(1); n <= 10 || n%1000 == 0 {
					fmt.Fprintf(os.Stderr, "proload: worker %d: %v (event %d)\n", worker, err, n)
				}
			},
		})
		if rbStop != nil {
			rbStop()
		}
		if forceDone != nil {
			<-forceDone
		}
		if r != nil && esSample != nil && (rbStop != nil || forceDone != nil) {
			s, m, h := esSample()
			r.Elastic = true
			r.Splits, r.Merges = s-esSplits, m-esMerges
			r.Handover = time.Duration(h - esHand)
		}
		if backend != shared {
			backend.close()
		}
		if err != nil {
			fatal(err)
		}
		if n := events.Load(); n > 10 {
			fmt.Fprintf(os.Stderr, "proload: %d failure events total (log sampled)\n", n)
		}
		if *elasticForce && (r.Splits == 0 || r.Merges == 0 || r.Errors > 0) {
			r.Fprint(os.Stdout)
			fatal(fmt.Errorf("elastic-force: scenario %q finished with splits=%d merges=%d errors=%d; want at least one split and one merge with zero protocol errors", sp.Name, r.Splits, r.Merges, r.Errors))
		}
		r.Fprint(os.Stdout)
		results = append(results, r)
	}

	if shared != nil && shared.edge != nil {
		fmt.Printf("%s\n", shared.edge.Stats().Snapshot())
	}

	if *jsonOut != "" {
		data, err := load.MarshalReports(results)
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
	}

	if *check {
		failed := 0
		for _, r := range results {
			if !r.Pass() {
				failed++
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "proload: %d/%d scenarios violated their SLO\n", failed, len(results))
			os.Exit(1)
		}
	}
}

func pickScenarios(arg string) ([]load.Spec, error) {
	if arg == "all" {
		return load.Matrix(), nil
	}
	var specs []load.Spec
	for _, name := range strings.Split(arg, ",") {
		sp, err := load.Lookup(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// backend abstracts where requests go: a freshly built in-process cluster,
// or dialed TCP endpoints (redialed per worker on connection failure).
type backend struct {
	addrs       []string
	cs          *repro.ClusterServer
	edge        *edge.Edge // all workers share it, like one edge node would be shared
	walDir      string     // throwaway chaos WAL directory, removed on close
	ns          *wire.NetServer
	nsAddr      string // loopback address of the -nethop serving layer
	upstream    *edge.UpstreamPool
	shardErrors atomic.Int64
}

func connect(addr string, shards, objects int, ds string, seed int64, chaos, edgeOn, nethop bool) (*backend, error) {
	b := &backend{}
	if addr != "" {
		if chaos {
			return nil, fmt.Errorf("fault scenarios inject shard kills and need the in-process backend (-inprocess), not -addr")
		}
		if edgeOn {
			return nil, fmt.Errorf("-edge builds an in-process edge tier and needs the in-process backend (-inprocess), not -addr")
		}
		if nethop {
			return nil, fmt.Errorf("-nethop serves the in-process cluster over loopback and needs -inprocess, not -addr")
		}
		b.addrs = strings.Split(addr, ",")
		return b, nil
	}
	if chaos && nethop {
		return nil, fmt.Errorf("-nethop does not combine with fault scenarios (kills are injected behind the serving layer)")
	}
	if shards <= 0 {
		shards = 4
	}
	objs := repro.GenerateNE(objects, seed)
	_ = ds // both synthetic generators share the NE skew; rd reserved
	cfg := repro.ClusterConfig{Shards: shards}
	if chaos {
		// Chaos runs need durable, failover-capable shards: throwaway
		// per-shard WALs (no fsync; the directory dies with the run), warm
		// replicas, and a hair trigger so a kill is absorbed within one
		// query's retry budget.
		dir, err := os.MkdirTemp("", "proload-wal-")
		if err != nil {
			return nil, err
		}
		b.walDir = dir
		cfg.WALDir = dir
		cfg.WALNoSync = true
		cfg.Replicas = true
		cfg.RetryAttempts = 4
		cfg.RetryBackoff = 2 * time.Millisecond
		cfg.FailThreshold = 1
	}
	cs, err := repro.NewClusterServer(objs, cfg)
	if err != nil {
		if b.walDir != "" {
			os.RemoveAll(b.walDir)
		}
		return nil, err
	}
	b.cs = cs
	if nethop {
		// Serve the cluster over loopback TCP so every upstream round trip
		// crosses a real wire hop: the direct baseline pays it per query,
		// the edge tier only on misses (docs/EDGE.md).
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.close()
			return nil, err
		}
		b.ns = cs.NetServer(repro.ServeOptions{})
		b.nsAddr = ln.Addr().String()
		go b.ns.Serve(ln)
	}
	if edgeOn {
		opts := repro.EdgeOptions{}
		if nethop {
			pool, err := edge.NewUpstreamPool(2, func() (wire.Transport, error) {
				conn, err := net.Dial("tcp", b.nsAddr)
				if err != nil {
					return nil, err
				}
				return wire.NewBinaryClientConnRole(conn, wire.RoleEdge)
			})
			if err != nil {
				b.close()
				return nil, err
			}
			b.upstream = pool
			opts.Upstream = pool
		}
		eg, err := cs.Edge(opts)
		if err != nil {
			b.close()
			return nil, err
		}
		b.edge = eg
	}
	return b, nil
}

// injector exposes the in-process cluster's chaos surface; nil for dialed
// backends (Run rejects fault scenarios without one).
func (b *backend) injector() load.Injector {
	if b.cs == nil {
		return nil
	}
	return b.cs
}

// failoverStats samples the router's failover counters for the report.
func (b *backend) failoverStats() (retries, failovers, redials int64) {
	if b.cs == nil {
		return 0, 0, 0
	}
	snap := b.cs.ClusterStats()
	return snap.Retries(), snap.Failovers(), snap.Redials()
}

// edgeStats exposes the edge tier's counter snapshot to the harness; nil
// when no edge tier fronts this backend.
func (b *backend) edgeStats() func() metrics.EdgeSnapshot {
	if b.edge == nil {
		return nil
	}
	return b.edge.Stats().Snapshot
}

// elasticStats exposes the router's topology-operation counters to the
// harness; nil for dialed backends.
func (b *backend) elasticStats() func() (int64, int64, int64) {
	if b.cs == nil {
		return nil
	}
	st := b.cs.Elastic().Stats()
	return func() (int64, int64, int64) {
		return st.Splits.Load(), st.Merges.Load(), st.HandoverNanos.Load()
	}
}

// startRebalancer runs the load-driven rebalancer over the in-process
// cluster for one scenario. The split threshold defaults to twice the
// initial per-shard object count, so only genuinely skewed growth triggers;
// merge thresholds sit at a quarter of split (well inside the anti-flap
// band). Returns the stop function.
func startRebalancer(cs *repro.ClusterServer, splitObjects int64, objects int) func() {
	if splitObjects <= 0 {
		shards := len(cs.LiveShards())
		if shards < 1 {
			shards = 1
		}
		splitObjects = 2*int64(objects)/int64(shards) + 1
	}
	_, stop, err := cs.StartRebalancer(elastic.Config{
		SplitObjects: splitObjects,
		MergeObjects: splitObjects / 4,
		Cooldown:     500 * time.Millisecond,
		Interval:     100 * time.Millisecond,
		OnEvent: func(ev elastic.Event) {
			fmt.Fprintf(os.Stderr, "proload: elastic %s shard=%d target=%d objects=%d qps=%.0f err=%v\n",
				ev.Kind, ev.Shard, ev.Target, ev.Objects, ev.QPS, ev.Err)
		},
	})
	if err != nil {
		fatal(err)
	}
	return stop
}

// forceElastic drives one deterministic split/merge cycle mid-run: the
// shard owning the most objects splits a third of the way in, and the pair
// folds back at two thirds — the CI smoke gate for online topology changes
// under live open-loop load. Failures are printed and left for the
// -elastic-force exit check to catch via the run's split/merge counters.
func forceElastic(cs *repro.ClusterServer, dur time.Duration) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(dur / 3)
		st := cs.Elastic().Stats()
		hot, best := -1, int64(-1)
		for _, s := range cs.LiveShards() {
			if n := st.Shard(s).Objects.Load(); n > best {
				hot, best = s, n
			}
		}
		if hot < 0 {
			return
		}
		if err := cs.SplitShard(hot); err != nil {
			fmt.Fprintf(os.Stderr, "proload: forced split of shard %d: %v\n", hot, err)
			return
		}
		fresh := cs.Shards() - 1
		fmt.Fprintf(os.Stderr, "proload: forced split of shard %d -> slot %d\n", hot, fresh)
		time.Sleep(dur / 3)
		s, ok := cs.SiblingOf(fresh)
		if !ok {
			fmt.Fprintf(os.Stderr, "proload: forced merge skipped: slot %d no longer has a sibling\n", fresh)
			return
		}
		if err := cs.MergeShards(s, fresh); err != nil {
			fmt.Fprintf(os.Stderr, "proload: forced merge of (%d,%d): %v\n", s, fresh, err)
			return
		}
		fmt.Fprintf(os.Stderr, "proload: forced merge of slot %d back into shard %d\n", fresh, s)
	}()
	return done
}

// newTransport hands a worker its connection: the shared in-process
// handler (through the shared edge tier under -edge), one dialed server,
// or a client-side cluster router with shard errors surfaced as counted,
// non-fatal events.
func (b *backend) newTransport(worker int) (wire.Transport, error) {
	if b.edge != nil {
		return b.edge, nil
	}
	if b.nsAddr != "" {
		return repro.Dial(b.nsAddr)
	}
	if b.cs != nil {
		return b.cs.Transport(), nil
	}
	if len(b.addrs) == 1 {
		return repro.Dial(b.addrs[0])
	}
	return cluster.Dial(b.addrs, cluster.Config{
		OnShardError: func(int, error) { b.shardErrors.Add(1) },
	})
}

func (b *backend) release(resp *wire.Response) {
	if b.nsAddr != "" {
		// Responses crossed the wire and were freshly decoded client-side;
		// they never came from the router pool. Leave them to the GC.
		return
	}
	if b.cs != nil {
		b.cs.ReleaseResponse(resp)
	}
}

func (b *backend) close() {
	if b.upstream != nil {
		b.upstream.Close()
	}
	if b.ns != nil {
		b.ns.Close()
	}
	if b.cs != nil {
		b.cs.Close()
	}
	if b.walDir != "" {
		os.RemoveAll(b.walDir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "proload:", err)
	os.Exit(1)
}
