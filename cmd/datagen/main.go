// Command datagen generates and saves the synthetic evaluation datasets
// (NE-like postal zones, RD-like road segments) so experiment runs and the
// prodb server can share identical data.
//
// Usage:
//
//	datagen -dataset ne -n 123593 -seed 1 -out ne.gob
//	datagen -dataset rd -n 594103 -out rd.gob
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
)

func main() {
	var (
		kind = flag.String("dataset", "ne", "dataset family: ne or rd")
		n    = flag.Int("n", 0, "cardinality (default: the paper's)")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("out", "", "output path (default <dataset>.gob)")
	)
	flag.Parse()

	if *out == "" {
		*out = *kind + ".gob"
	}
	start := time.Now()
	var ds *dataset.Dataset
	switch *kind {
	case "ne":
		ds = dataset.GenerateNE(dataset.Params{N: *n, Seed: *seed})
	case "rd":
		ds = dataset.GenerateRD(dataset.Params{N: *n, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q (want ne or rd)\n", *kind)
		os.Exit(2)
	}
	if err := ds.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d objects, %.1f MB payload, written to %s in %v\n",
		ds.Name, ds.Len(), float64(ds.TotalBytes)/(1<<20), *out,
		time.Since(start).Round(time.Millisecond))
}
