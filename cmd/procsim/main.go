// Command procsim regenerates the paper's experiments.
//
// Usage:
//
//	procsim -fig 6            # Figure 6 at bench scale
//	procsim -fig all -full    # every figure at paper scale (slow)
//	procsim -fig 11 -queries 4000 -objects 50000
//	procsim -fig throughput -clients 16
//
// Figures: table61, 6, 7, 8, 9, 10, 11, ablation-staticd, ablation-grd,
// ablation-partition, throughput, all. Figures 8 and 9 come from the same
// sweep and are printed together. The throughput mode is not a paper
// figure: it hammers one shared server from -clients concurrent goroutine
// clients (sweeping powers of two up from 1) and reports wall-clock
// queries/second with latency quantiles, measuring the concurrent serving
// layer rather than the simulated wireless channel. The load mode
// (-fig load -scenario steady|all) runs the open-loop scenario harness
// (internal/load) against an in-process backend; cmd/proload is the same
// harness with JSON output and TCP cluster support.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/load"
	"repro/internal/sim"
)

func main() {
	var (
		fig      = flag.String("fig", "6", "experiment to run (table61, 6, 7, 8, 9, 10, 11, ablation-staticd, ablation-grd, ablation-partition, throughput, load, all)")
		full     = flag.Bool("full", false, "paper scale: 123,593 objects, 10,000 queries")
		objects  = flag.Int("objects", 0, "override dataset cardinality")
		queries  = flag.Int("queries", 0, "override query count")
		seed     = flag.Int64("seed", 1, "random seed")
		ds       = flag.String("dataset", "ne", "dataset: ne or rd")
		window   = flag.Int("window", 0, "Figure 11 window size (default queries/20)")
		clients  = flag.Int("clients", 8, "throughput mode: max concurrent clients (swept in powers of two)")
		shards   = flag.Int("cluster", 1, "throughput/load modes: spatial shards behind the scatter-gather router (1 = single node)")
		scenario = flag.String("scenario", "steady", "load mode: scenario name from the matrix, or all")
		qps      = flag.Float64("qps", 2000, "load mode: open-loop target arrival rate")
		duration = flag.Duration("duration", 2*time.Second, "load mode: run length per scenario")
		users    = flag.Int("users", 100_000, "load mode: simulated user population")
	)
	flag.Parse()

	sc := sim.BenchScale()
	if *full {
		sc = sim.FullScale()
	}
	if *objects > 0 {
		sc.Objects = *objects
	}
	if *queries > 0 {
		sc.Queries = *queries
	}
	sc.Seed = *seed

	start := time.Now()
	fmt.Printf("dataset=%s objects=%d queries=%d seed=%d\n", *ds, sc.Objects, sc.Queries, sc.Seed)
	var env *sim.Environment
	if *ds == "rd" {
		env = sim.NewRDEnvironment(sc)
	} else {
		env = sim.NewNEEnvironment(sc)
	}
	fmt.Printf("index built in %v (%d nodes, height %d)\n\n",
		time.Since(start).Round(time.Millisecond), env.Tree.NodeCount(), env.Tree.Height())

	run := func(name string) {
		t0 := time.Now()
		if err := runFigure(name, env, sc, *window, *clients, *shards, *scenario, *qps, *duration, *users); err != nil {
			fmt.Fprintf(os.Stderr, "procsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	if *fig == "all" {
		for _, name := range []string{"table61", "6", "7", "8", "10", "11",
			"ablation-staticd", "ablation-grd", "ablation-partition",
			"ext-updates", "ext-coop"} {
			run(name)
		}
		return
	}
	run(*fig)
}

func runFigure(name string, env *sim.Environment, sc sim.Scale, window, clients, shards int, scenario string, qps float64, duration time.Duration, users int) error {
	w := os.Stdout
	switch name {
	case "load":
		specs := load.Matrix()
		if scenario != "all" {
			sp, err := load.Lookup(scenario)
			if err != nil {
				return err
			}
			specs = []load.Spec{sp}
		}
		var results []*load.Result
		for _, sp := range specs {
			r, err := sim.OpenLoop(env, shards, sp, qps, duration, users, 0, sc.Seed)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		sim.FprintLoad(w, results)
	case "throughput":
		if clients < 1 {
			return fmt.Errorf("-clients must be >= 1 (got %d)", clients)
		}
		var counts []int
		for c := 1; c < clients; c *= 2 {
			counts = append(counts, c)
		}
		counts = append(counts, clients)
		perClient := sc.Queries / len(counts)
		if perClient < 1 {
			perClient = 1
		}
		rows, err := sim.ThroughputSweepSharded(env, shards, counts, perClient, sc.Seed)
		if err != nil {
			return err
		}
		sim.FprintThroughput(w, rows)
	case "table61":
		printTable61(env)
		return nil
	case "6":
		rows, err := sim.Figure6(env, sc)
		if err != nil {
			return err
		}
		sim.FprintFigure6(w, rows)
	case "7":
		rows, err := sim.Figure7(env, sc)
		if err != nil {
			return err
		}
		sim.FprintFigure7(w, rows)
	case "8", "9":
		rows, err := sim.Figure8and9(env, sc)
		if err != nil {
			return err
		}
		sim.FprintFigure8and9(w, rows)
	case "10":
		rows, err := sim.Figure10(env, sc)
		if err != nil {
			return err
		}
		sim.FprintFigure10(w, rows)
	case "11":
		series, err := sim.Figure11(env, sc, window)
		if err != nil {
			return err
		}
		sim.FprintFigure11(w, series)
	case "ablation-staticd":
		rows, adaptive, err := sim.AblationStaticD(env, sc, []int{0, 1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ablation: fixed refinement level d vs adaptive")
		fmt.Fprintf(w, "%8s %10s %8s %8s\n", "d", "resp s", "fmr", "hitc")
		for _, r := range rows {
			fmt.Fprintf(w, "%8d %10.3f %8.3f %8.3f\n", r.D, r.Resp, r.FMR, r.HitC)
		}
		fmt.Fprintf(w, "%8s %10.3f %8.3f %8.3f\n", "adaptive", adaptive.Resp, adaptive.FMR, adaptive.HitC)
	case "ablation-grd":
		rows, err := sim.AblationGRD2vsGRD3(env, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ablation: GRD2 (EBRS reference) vs GRD3 (efficient)")
		fmt.Fprintf(w, "%8s %10s %8s %12s\n", "policy", "resp s", "hitc", "cpu ms/q")
		for _, r := range rows {
			fmt.Fprintf(w, "%8s %10.3f %8.3f %12.3f\n", r.Policy, r.Resp, r.HitC, r.CacheOps)
		}
	case "ablation-partition":
		rows, err := sim.AblationPartitionCost(env, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ablation: server engine ops, full-form vs partition navigation")
		for _, r := range rows {
			fmt.Fprintf(w, "%8s %12d\n", r.Model, r.ServerEngineOps)
		}
	case "ext-updates":
		rows, err := sim.UpdateSweep(sc.Objects, sc.Queries, sc.Seed,
			[]float64{0, 0.1, 0.5, 2.0}, 20)
		if err != nil {
			return err
		}
		sim.FprintUpdateSweep(w, rows)
	case "ext-coop":
		rows, err := sim.CoopSweep(env, sc.Queries/2, sc.Seed, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		sim.FprintCoopSweep(w, rows)
	default:
		return fmt.Errorf("unknown figure %q", name)
	}
	return nil
}

func printTable61(env *sim.Environment) {
	cfg := sim.DefaultConfig(env)
	fmt.Println("Table 6.1: system parameter settings")
	rows := [][2]string{
		{"spd", fmt.Sprintf("%g units/s", cfg.Speed)},
		{"think time", fmt.Sprintf("%gs (exponential)", cfg.ThinkMean)},
		{"Area_wnd", fmt.Sprintf("%g", cfg.AreaWnd)},
		{"Dist_join", fmt.Sprintf("%g", cfg.DistJoin)},
		{"join window side", fmt.Sprintf("%g (substitution, see DESIGN.md)", cfg.JoinWndSide)},
		{"K_max", fmt.Sprintf("%d", cfg.KMax)},
		{"bandwidth", fmt.Sprintf("%.0f Kbps", cfg.BandwidthBps/1000)},
		{"|C|", "0.1%..5% of dataset bytes (default 1%)"},
		{"|o|", "10KB mean, Zipf theta=0.8"},
		{"s", fmt.Sprintf("%g", cfg.Sensitivity)},
		{"dataset bytes", fmt.Sprintf("%d (%s, %d objects)", env.DS.TotalBytes, env.DS.Name, env.DS.Len())},
	}
	for _, r := range rows {
		fmt.Printf("  %-18s %s\n", r[0], r[1])
	}
	_ = dataset.NECardinality
}
