// Command prodb serves a spatial dataset to proactive-caching clients over
// TCP using the gob wire protocol. Clients connect with repro.Dial (see
// examples/netclient).
//
// Usage:
//
//	prodb -addr :7001 -n 50000            # synthetic NE data
//	prodb -addr :7001 -load ne.gob        # dataset from datagen
//	prodb -form compact                   # CPRO-style index shipping
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro"
	"repro/internal/dataset"
)

func main() {
	var (
		addr = flag.String("addr", ":7001", "listen address")
		n    = flag.Int("n", 50_000, "synthetic NE objects when -load is not given")
		seed = flag.Int64("seed", 1, "synthetic data seed")
		load = flag.String("load", "", "load a datagen .gob file instead of generating")
		form = flag.String("form", "adaptive", "index shipping form: full, compact, adaptive")
	)
	flag.Parse()

	var objects []repro.Object
	switch {
	case *load != "":
		ds, err := dataset.Load(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prodb: %v\n", err)
			os.Exit(1)
		}
		objects = ds.Objects
		fmt.Printf("loaded %d objects from %s\n", len(objects), *load)
	default:
		objects = repro.GenerateNE(*n, *seed)
		fmt.Printf("generated %d synthetic NE objects (seed %d)\n", len(objects), *seed)
	}

	var indexForm repro.IndexForm
	switch *form {
	case "full":
		indexForm = repro.FullForm
	case "compact":
		indexForm = repro.CompactForm
	case "adaptive":
		indexForm = repro.AdaptiveForm
	default:
		fmt.Fprintf(os.Stderr, "prodb: unknown form %q\n", *form)
		os.Exit(2)
	}

	start := time.Now()
	srv := repro.NewServer(objects, repro.ServerConfig{Form: indexForm})
	st := srv.IndexStats()
	fmt.Printf("index: %d nodes, height %d, %.0f%% fill, built in %v\n",
		st.Nodes, st.Height, st.AvgFill*100, time.Since(start).Round(time.Millisecond))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prodb: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("serving proactive spatial queries on %s (form=%s)\n", ln.Addr(), *form)
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "prodb: %v\n", err)
		os.Exit(1)
	}
}
