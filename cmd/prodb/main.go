// Command prodb serves a spatial dataset to proactive-caching clients over
// TCP. The wire protocol is negotiated per connection: the compact binary
// codec with request pipelining (many queries in flight per connection,
// responses correlated by id) for new clients, the serial gob protocol as a
// fallback for old ones. Clients connect with repro.Dial (see
// examples/netclient; docs/WIRE.md specifies the framing).
//
// The serving layer runs one goroutine per connection behind a connection
// limit and a bounded worker pool, reaps idle connections, and drains
// in-flight requests on SIGINT/SIGTERM before exiting.
//
// Usage:
//
//	prodb -addr :7001 -n 50000            # synthetic NE data
//	prodb -addr :7001 -load ne.gob        # dataset from datagen
//	prodb -cluster 4                      # 4 in-process spatial shards
//	prodb -form compact                   # CPRO-style index shipping
//	prodb -max-conns 8192 -inflight 64    # tune concurrency limits
//	prodb -pipeline 128                   # deeper per-connection pipelining
//	prodb -updates=false                  # read-only: reject wire updates
//	prodb -follower                       # warm standby: primary-only updates
//	prodb -cluster 4 -wal /var/lib/prodb  # durable shards (WAL + checkpoints)
//	prodb -cluster 4 -replicas            # warm standby per shard
//	prodb -cluster 4 -elastic             # online split/merge rebalancing
//	prodb -stats 10s                      # periodic serving stats
//	prodb -pprof localhost:6060           # expose net/http/pprof for profiling
//
// See docs/PERF.md for a two-minute profiling recipe against -pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/metrics"
	"repro/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", ":7001", "listen address")
		n        = flag.Int("n", 50_000, "synthetic NE objects when -load is not given")
		seed     = flag.Int64("seed", 1, "synthetic data seed")
		load     = flag.String("load", "", "load a datagen .gob file instead of generating")
		form     = flag.String("form", "adaptive", "index shipping form: full, compact, adaptive")
		maxConns = flag.Int("max-conns", 0, "max concurrent connections (0 = default 4096)")
		inflight = flag.Int("inflight", 0, "max concurrently executing requests (0 = 4*GOMAXPROCS)")
		pipeline = flag.Int("pipeline", 0, "max requests in flight per binary connection (0 = default 64)")
		readTO   = flag.Duration("read-timeout", 0, "idle connection deadline (0 = default 5m)")
		updates  = flag.Bool("updates", true, "accept batched index updates from wire clients (netclient -updates)")
		follower = flag.Bool("follower", false, "warm-standby mode: only a primary's replication stream may send updates (single node only, see docs/DURABILITY.md)")
		clusterN = flag.Int("cluster", 1, "spatial shards served behind one scatter-gather router (1 = single node, see docs/CLUSTER.md)")
		edgeMode = flag.Bool("edge", false, "cluster mode: serve through an edge cache tier — popular range/kNN queries answered from a partition-cell-keyed cache, invalidated off the cluster's epoch stream (docs/EDGE.md)")
		edgeSync = flag.Duration("edge-sync", 250*time.Millisecond, "edge mode: time floor on the invalidation subscription (0 = evidence/update-driven only)")
		walDir   = flag.String("wal", "", "cluster mode: per-shard WAL+checkpoint directory for crash recovery (empty = memory only)")
		replicas = flag.Bool("replicas", false, "cluster mode: run a warm standby per shard for transparent failover")
		elastOn  = flag.Bool("elastic", false, "cluster mode: run the load-driven rebalancer — hot shards split online, cold sibling pairs merge back (docs/ELASTIC.md)")
		splitAt  = flag.Int64("split-objects", 0, "elastic mode: split a shard at this object count (0 derives twice the initial per-shard count)")
		statsEv  = flag.Duration("stats", 0, "print serving stats at this interval (0 = off)")
		drainTO  = flag.Duration("drain", 15*time.Second, "graceful shutdown drain timeout")
		pprofAt  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	)
	flag.Parse()

	if *pprofAt != "" {
		// The pprof handlers live on http.DefaultServeMux via the blank
		// import; serve them on a side listener so profiling never shares
		// a port with the query protocol.
		pln, err := net.Listen("tcp", *pprofAt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prodb: pprof listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "prodb: pprof: %v\n", err)
			}
		}()
	}

	// Validate flags before paying for dataset generation.
	var indexForm repro.IndexForm
	switch *form {
	case "full":
		indexForm = repro.FullForm
	case "compact":
		indexForm = repro.CompactForm
	case "adaptive":
		indexForm = repro.AdaptiveForm
	default:
		fmt.Fprintf(os.Stderr, "prodb: unknown form %q\n", *form)
		os.Exit(2)
	}

	if *follower && *clusterN > 1 {
		fmt.Fprintln(os.Stderr, "prodb: -follower is a single-node mode; a cluster's replicas are managed by -replicas")
		os.Exit(2)
	}
	if (*walDir != "" || *replicas) && *clusterN <= 1 {
		fmt.Fprintln(os.Stderr, "prodb: -wal and -replicas require -cluster N (single-node durability is not served yet)")
		os.Exit(2)
	}
	if *elastOn && *clusterN <= 1 {
		fmt.Fprintln(os.Stderr, "prodb: -elastic requires -cluster N (a single node has nothing to split)")
		os.Exit(2)
	}
	if *edgeMode && *clusterN <= 1 {
		fmt.Fprintln(os.Stderr, "prodb: -edge requires -cluster N (the cache is keyed by the cluster's partition cells)")
		os.Exit(2)
	}

	var objects []repro.Object
	switch {
	case *load != "":
		ds, err := dataset.Load(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prodb: %v\n", err)
			os.Exit(1)
		}
		objects = ds.Objects
		fmt.Printf("loaded %d objects from %s\n", len(objects), *load)
	default:
		objects = repro.GenerateNE(*n, *seed)
		fmt.Printf("generated %d synthetic NE objects (seed %d)\n", len(objects), *seed)
	}

	start := time.Now()
	mode := "updates enabled"
	if !*updates {
		mode = "read-only"
	}
	if *follower {
		mode = "follower (replication-stream updates only)"
	}
	opts := repro.ServeOptions{
		MaxConns:    *maxConns,
		MaxInflight: *inflight,
		MaxPipeline: *pipeline,
		ReadTimeout: *readTO,
	}
	// Both deployment shapes serve the identical wire protocol; clients
	// cannot tell a cluster router from a single node.
	var (
		net1         *wire.NetServer
		statsFn      func() metrics.ServerSnapshot
		clusterStats func() metrics.ClusterSnapshot
		edgeStats    func() metrics.EdgeSnapshot
		closeFn      func()
	)
	if *clusterN > 1 {
		cs, err := repro.NewClusterServer(objects, repro.ClusterConfig{
			Shards:   *clusterN,
			Form:     indexForm,
			WALDir:   *walDir,
			Replicas: *replicas,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "prodb: %v\n", err)
			os.Exit(1)
		}
		cs.SetRemoteUpdates(*updates)
		durable := ""
		if *walDir != "" {
			durable = fmt.Sprintf(", WAL at %s", *walDir)
		}
		if *replicas {
			durable += ", warm replicas"
		}
		fmt.Printf("cluster: %d shards owning %v objects, built in %v (%s%s)\n",
			cs.Shards(), cs.ShardObjects(), time.Since(start).Round(time.Millisecond), mode, durable)
		if *edgeMode {
			eg, err := cs.Edge(repro.EdgeOptions{SyncInterval: *edgeSync})
			if err != nil {
				fmt.Fprintf(os.Stderr, "prodb: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("edge: cache tier over %d partition cells (sync floor %v)\n", cs.Shards(), *edgeSync)
			net1 = cs.EdgeNetServer(eg, opts)
			edgeStats = eg.Stats().Snapshot
		} else {
			net1 = cs.NetServer(opts)
		}
		if *elastOn {
			split := *splitAt
			if split == 0 {
				split = 2*int64(len(objects))/int64(*clusterN) + 1
			}
			_, stopRb, err := cs.StartRebalancer(elastic.Config{
				SplitObjects: split,
				MergeObjects: split / 4,
				Cooldown:     5 * time.Second,
				Interval:     time.Second,
				OnEvent: func(ev elastic.Event) {
					fmt.Printf("elastic: %s shard=%d objects=%d qps=%.0f err=%v\n",
						ev.Kind, ev.Shard, ev.Objects, ev.QPS, ev.Err)
				},
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "prodb: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("elastic: rebalancer online (split at %d objects, merge below %d)\n", split, split/4)
			csClose := cs.Close
			closeFn = func() { stopRb(); csClose() }
		} else {
			closeFn = cs.Close
		}
		statsFn = cs.Stats
		clusterStats = cs.ClusterStats
	} else {
		srv := repro.NewServer(objects, repro.ServerConfig{Form: indexForm})
		srv.SetRemoteUpdates(*updates)
		srv.SetFollower(*follower)
		st := srv.IndexStats()
		fmt.Printf("index: %d nodes, height %d, %.0f%% fill, built in %v (%s)\n",
			st.Nodes, st.Height, st.AvgFill*100, time.Since(start).Round(time.Millisecond), mode)
		net1 = srv.NetServer(opts)
		statsFn = srv.Stats
		closeFn = srv.Close
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prodb: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("serving proactive spatial queries on %s (form=%s)\n", ln.Addr(), *form)

	statsDone := make(chan struct{})
	if *statsEv > 0 {
		ticker := time.NewTicker(*statsEv)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					fmt.Printf("stats: %s\n", statsFn())
					if clusterStats != nil {
						fmt.Printf("stats: %s\n", clusterStats())
					}
					if edgeStats != nil {
						fmt.Printf("stats: %s\n", edgeStats())
					}
				case <-statsDone:
					return
				}
			}
		}()
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- net1.Serve(ln) }()

	exitCode := 0
	select {
	case sig := <-sigCh:
		close(statsDone) // keep stats lines out of the drain log
		fmt.Printf("\n%v: draining (up to %v)...\n", sig, *drainTO)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := net1.Shutdown(ctx); err != nil {
			// In-flight requests were force-closed; report the dirty
			// shutdown through the exit code for orchestrators.
			fmt.Fprintf(os.Stderr, "prodb: shutdown: %v\n", err)
			exitCode = 1
		}
	case err := <-serveErr:
		close(statsDone)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prodb: %v\n", err)
			os.Exit(1)
		}
	}
	closeFn() // stop the update writers after the serving layer drained
	fmt.Printf("final %s\n", statsFn())
	if clusterStats != nil {
		fmt.Printf("final %s\n", clusterStats())
	}
	if edgeStats != nil {
		fmt.Printf("final %s\n", edgeStats())
	}
	os.Exit(exitCode)
}
