package repro

// One benchmark per table/figure of the paper's evaluation (Section 6) plus
// micro-benchmarks of the building blocks. Figure benchmarks run a reduced-
// scale simulation per iteration and print the regenerated table once; use
// cmd/procsim -full for paper-scale runs.

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bpt"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/wire"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *sim.Environment
)

func benchEnvironment() *sim.Environment {
	benchEnvOnce.Do(func() {
		sc := benchScale()
		benchEnv = sim.NewNEEnvironment(sc)
	})
	return benchEnv
}

func benchScale() sim.Scale {
	sc := sim.BenchScale()
	if testing.Short() {
		sc = sim.TestScale()
	}
	return sc
}

// execAndRelease runs one request and returns the response to the server's
// response pool, mirroring the NetServer serving path (encode, then release).
func execAndRelease(srv *server.Server, req *wire.Request) {
	resp, _ := srv.Execute(req)
	srv.ReleaseResponse(resp)
}

var printOnce sync.Map

func printFirst(key string, print func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		print()
	}
}

// BenchmarkTable61 prints the parameter table; the measured op is building
// the simulation environment configuration.
func BenchmarkTable61(b *testing.B) {
	env := benchEnvironment()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(env)
		_ = cfg
	}
	printFirst("table61", func() {
		st := env.Tree.Stats()
		b.Logf("Table 6.1 environment: %d objects, %d nodes, height %d, fill %.0f%%",
			env.DS.Len(), st.Nodes, st.Height, st.AvgFill*100)
	})
}

// BenchmarkFigure6 regenerates the overall PAG/SEM/APRO comparison.
func BenchmarkFigure6(b *testing.B) {
	env := benchEnvironment()
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure6(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig6", func() { sim.FprintFigure6(os.Stdout, rows) })
	}
}

// BenchmarkFigure7 regenerates the mobility-model comparison.
func BenchmarkFigure7(b *testing.B) {
	env := benchEnvironment()
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure7(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig7", func() { sim.FprintFigure7(os.Stdout, rows) })
	}
}

// BenchmarkFigure8and9 regenerates the cache-size sweep (response time and
// client CPU figures share the runs).
func BenchmarkFigure8and9(b *testing.B) {
	env := benchEnvironment()
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure8and9(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig89", func() { sim.FprintFigure8and9(os.Stdout, rows) })
	}
}

// BenchmarkFigure10 regenerates the replacement-scheme comparison.
func BenchmarkFigure10(b *testing.B) {
	env := benchEnvironment()
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure10(env, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig10", func() { sim.FprintFigure10(os.Stdout, rows) })
	}
}

// BenchmarkFigure11 regenerates the adaptive-vs-static index form series.
func BenchmarkFigure11(b *testing.B) {
	env := benchEnvironment()
	for i := 0; i < b.N; i++ {
		series, err := sim.Figure11(env, benchScale(), 0)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig11", func() { sim.FprintFigure11(os.Stdout, series) })
	}
}

// BenchmarkAblationStaticD sweeps pinned refinement levels.
func BenchmarkAblationStaticD(b *testing.B) {
	env := benchEnvironment()
	sc := benchScale()
	sc.Queries /= 2
	for i := 0; i < b.N; i++ {
		rows, adaptive, err := sim.AblationStaticD(env, sc, []int{0, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		printFirst("abl-d", func() {
			for _, r := range rows {
				b.Logf("d=%d resp=%.3f fmr=%.3f hitc=%.3f", r.D, r.Resp, r.FMR, r.HitC)
			}
			b.Logf("adaptive resp=%.3f fmr=%.3f hitc=%.3f", adaptive.Resp, adaptive.FMR, adaptive.HitC)
		})
	}
}

// BenchmarkAblationGRD2vsGRD3 compares the reference and efficient
// replacement algorithms end to end.
func BenchmarkAblationGRD2vsGRD3(b *testing.B) {
	env := benchEnvironment()
	sc := benchScale()
	sc.Queries /= 2
	for i := 0; i < b.N; i++ {
		rows, err := sim.AblationGRD2vsGRD3(env, sc)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("abl-grd", func() {
			for _, r := range rows {
				b.Logf("%s resp=%.3f hitc=%.3f cpu=%.3fms", r.Policy, r.Resp, r.HitC, r.CacheOps)
			}
		})
	}
}

// BenchmarkAblationPartitionCost measures the Section 4.2 server-side cost
// of partition-tree navigation.
func BenchmarkAblationPartitionCost(b *testing.B) {
	env := benchEnvironment()
	sc := benchScale()
	sc.Queries /= 2
	for i := 0; i < b.N; i++ {
		rows, err := sim.AblationPartitionCost(env, sc)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("abl-part", func() {
			for _, r := range rows {
				b.Logf("%s server engine ops=%d", r.Model, r.ServerEngineOps)
			}
		})
	}
}

// BenchmarkExtensionUpdates measures the update/invalidation extension
// (server churn, epoch-based invalidation, stale retries).
func BenchmarkExtensionUpdates(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := sim.UpdateSweep(sc.Objects/2, sc.Queries/2, sc.Seed, []float64{0, 0.5, 2.0}, 20)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("ext-upd", func() { sim.FprintUpdateSweep(os.Stdout, rows) })
	}
}

// BenchmarkExtensionCoop measures the cooperative caching extension
// (neighborhood cache sharing over a cheap local link).
func BenchmarkExtensionCoop(b *testing.B) {
	env := benchEnvironment()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := sim.CoopSweep(env, sc.Queries/3, sc.Seed, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		printFirst("ext-coop", func() { sim.FprintCoopSweep(os.Stdout, rows) })
	}
}

// --------------------------------------------------------------------------
// Micro-benchmarks of the substrates.

func benchItems(n int) []rtree.Item {
	r := rand.New(rand.NewSource(1))
	items := make([]rtree.Item, n)
	for i := range items {
		c := geom.Pt(r.Float64(), r.Float64())
		items[i] = rtree.Item{Obj: rtree.ObjectID(i + 1), MBR: geom.RectFromCenter(c, 5e-4, 5e-4)}
	}
	return items
}

func BenchmarkRTreeInsert(b *testing.B) {
	items := benchItems(b.N)
	tr := rtree.New(rtree.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(items[i].Obj, items[i].MBR)
	}
}

func BenchmarkRTreeBulkLoad100k(b *testing.B) {
	items := benchItems(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rtree.BulkLoad(rtree.DefaultParams(), items, 0.7)
	}
}

func BenchmarkRTreeRangeQuery(b *testing.B) {
	tr := rtree.BulkLoad(rtree.DefaultParams(), benchItems(100_000), 0.7)
	r := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
		tr.RangeQuery(w)
	}
}

func BenchmarkRTreeKNN(b *testing.B) {
	tr := rtree.BulkLoad(rtree.DefaultParams(), benchItems(100_000), 0.7)
	r := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(geom.Pt(r.Float64(), r.Float64()), 5)
	}
}

func BenchmarkBPTBuild(b *testing.B) {
	entries := make([]rtree.Entry, 204)
	r := rand.New(rand.NewSource(4))
	for i := range entries {
		entries[i] = rtree.Entry{
			MBR: geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01),
			Obj: rtree.ObjectID(i + 1),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bpt.Build(1, entries)
	}
}

func BenchmarkMergeCuts(b *testing.B) {
	entries := make([]rtree.Entry, 128)
	r := rand.New(rand.NewSource(5))
	for i := range entries {
		entries[i] = rtree.Entry{
			MBR: geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01),
			Obj: rtree.ObjectID(i + 1),
		}
	}
	pt := bpt.Build(1, entries)
	a := pt.ExpandCut(pt.RootCut(), 3)
	c := pt.ExpandCut(pt.RootCut(), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bpt.MergeCuts(a, c)
	}
}

func BenchmarkServerColdKNN(b *testing.B) {
	env := benchEnvironment()
	srv := server.New(env.Tree, env.DS.SizeOf, server.Config{})
	r := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := &wire.Request{Q: query.NewKNN(geom.Pt(r.Float64(), r.Float64()), 5)}
		srv.Execute(req)
	}
}

// BenchmarkServerExecuteParallel measures the concurrent serving path: many
// goroutines (one simulated client each) issuing mixed range/kNN requests
// against one shared Server. Run with -cpu 1,4 to see the multi-core
// scaling of the shared read lock, sharded client state, and lazily built
// partition forest:
//
//	go test -bench BenchmarkServerExecuteParallel -cpu 1,4 .
func BenchmarkServerExecuteParallel(b *testing.B) {
	env := benchEnvironment()
	srv := server.New(env.Tree, env.DS.SizeOf, server.Config{})

	// Pregenerate a fixed query pool consumed through a shared cursor, so
	// every -cpu value executes the same work in the same proportions and
	// ns/op differences reflect the serving path, not workload skew.
	r := rand.New(rand.NewSource(42))
	pool := make([]query.Query, 4096)
	for i := range pool {
		p := geom.Pt(r.Float64(), r.Float64())
		if i%2 == 0 {
			pool[i] = query.NewRange(geom.RectFromCenter(p, 0.01, 0.01))
		} else {
			pool[i] = query.NewKNN(p, 5)
		}
	}
	// Warm the partition forest so lazy builds don't dominate short runs.
	for i := 0; i < 64; i++ {
		srv.Execute(&wire.Request{Client: 1, Q: pool[i]})
	}

	var nextClient atomic.Uint32
	var cursor atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := wire.ClientID(nextClient.Add(1))
		req := &wire.Request{Client: id}
		for pb.Next() {
			req.Q = pool[cursor.Add(1)%uint64(len(pool))]
			execAndRelease(srv, req)
		}
	})
}

// --------------------------------------------------------------------------
// Warm serving hot path: one server, forest and pools warm, repeated
// Execute calls. These are the allocation-budget benchmarks tracked by
// scripts/bench.sh / BENCH_*.json; docs/PERF.md documents the per-request
// allocation ceiling they enforce.

// warmServer builds a server over the bench environment and runs a few
// queries so lazy structures (partition forest, pools) are warm.
func warmServer(b *testing.B) *server.Server {
	env := benchEnvironment()
	srv := server.New(env.Tree, env.DS.SizeOf, server.Config{})
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 64; i++ {
		p := geom.Pt(r.Float64(), r.Float64())
		execAndRelease(srv, &wire.Request{Client: 1, Q: query.NewRange(geom.RectFromCenter(p, 0.01, 0.01))})
		execAndRelease(srv, &wire.Request{Client: 1, Q: query.NewKNN(p, 5)})
	}
	return srv
}

// benchmarkWarmExecute measures steady-state Execute over a fixed request
// pool (the serving path after the NetServer has decoded a request).
func benchmarkWarmExecute(b *testing.B, reqs []*wire.Request) {
	srv := warmServer(b)
	for _, req := range reqs[:min(len(reqs), 8)] {
		execAndRelease(srv, req) // touch every query shape once pre-timer
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		execAndRelease(srv, reqs[i%len(reqs)])
	}
}

func warmRequests(n int, mk func(r *rand.Rand) query.Query) []*wire.Request {
	r := rand.New(rand.NewSource(21))
	reqs := make([]*wire.Request, n)
	for i := range reqs {
		reqs[i] = &wire.Request{Client: 1, Q: mk(r)}
	}
	return reqs
}

// BenchmarkWarmRangeExecute is the headline allocation benchmark: a warm
// range query on the server should be effectively allocation-free.
func BenchmarkWarmRangeExecute(b *testing.B) {
	benchmarkWarmExecute(b, warmRequests(512, func(r *rand.Rand) query.Query {
		return query.NewRange(geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01))
	}))
}

func BenchmarkWarmKNNExecute(b *testing.B) {
	benchmarkWarmExecute(b, warmRequests(512, func(r *rand.Rand) query.Query {
		return query.NewKNN(geom.Pt(r.Float64(), r.Float64()), 5)
	}))
}

func BenchmarkWarmJoinExecute(b *testing.B) {
	benchmarkWarmExecute(b, warmRequests(512, func(r *rand.Rand) query.Query {
		return query.NewJoin(geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.004, 0.004), 5e-5)
	}))
}

// BenchmarkAPROBuild isolates the supporting-index construction (partition
// forest navigation + cut assembly) that rides on every indexed response:
// the remainder query resumes from a handed-over H instead of the root, so
// the engine does little work and index building dominates.
func BenchmarkAPROBuild(b *testing.B) {
	srv := warmServer(b)
	r := rand.New(rand.NewSource(22))
	reqs := make([]*wire.Request, 128)
	for i := range reqs {
		p := geom.Pt(r.Float64(), r.Float64())
		q := query.NewKNN(p, 5)
		reqs[i] = &wire.Request{
			Client: 1,
			Q:      q,
			H:      query.SeedRoot(q, srv.RootRef()),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		execAndRelease(srv, reqs[i%len(reqs)])
	}
}

// --------------------------------------------------------------------------
// Mixed read/write path: queries against a snapshot-isolated server while a
// sustained MoveObject stream publishes new snapshots. These benchmarks own
// a private tree (the update stream mutates the index, so the shared
// benchEnvironment must not be used). BenchmarkMixedQueryUnderUpdates is
// expected to stay within ~20% of BenchmarkMixedQueryBaseline: queries pin
// snapshots lock-free and never wait for the writer.

// benchMutableServer builds a private server plus a churn flock the update
// stream moves around, warmed so pools, forest, and writer buffers are hot.
func benchMutableServer(b *testing.B, churn int) (*server.Server, []geom.Rect, []wire.UpdateOp) {
	b.Helper()
	r := rand.New(rand.NewSource(55))
	n := 20_000
	if testing.Short() {
		n = 4_000
	}
	items := make([]rtree.Item, n)
	for i := range items {
		items[i] = rtree.Item{
			Obj: rtree.ObjectID(i + 1),
			MBR: geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.001, 0.001),
		}
	}
	tree := rtree.BulkLoad(rtree.Params{MaxEntries: 64}, items, 0.7)
	srv := server.New(tree, func(rtree.ObjectID) int { return 1024 }, server.Config{})
	b.Cleanup(srv.Close)

	rects := make([]geom.Rect, churn)
	ops := make([]wire.UpdateOp, 0, churn)
	for i := range rects {
		rects[i] = geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.001, 0.001)
		ops = append(ops, wire.UpdateOp{
			Kind: wire.UpdateInsert, Obj: rtree.ObjectID(1_000_000 + i), To: rects[i], Size: 256,
		})
	}
	srv.ApplyUpdates(ops, nil) // also warms the writer's buffer rotation
	for i := 0; i < 64; i++ {
		execAndRelease(srv, &wire.Request{Client: 1, Q: query.NewRange(geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01))})
	}
	return srv, rects, ops[:0]
}

// moveStreamInterval paces the benchmark's update stream at 20 batches of 64
// moves per second — a sustained 1280 moves/s feed, heavy for the paper's
// moving-object setting but far from saturating the writer, so the benchmark
// measures what a realistic stream costs readers rather than how fast one
// core can checkpoint.
const moveStreamInterval = 50 * time.Millisecond

// runMoveStream streams batches of 64 moves through ApplyUpdates until stop
// closes, returning a channel that reports the total applied operations.
func runMoveStream(srv *server.Server, rects []geom.Rect, ops []wire.UpdateOp, stop <-chan struct{}) <-chan int64 {
	total := make(chan int64, 1)
	go func() {
		r := rand.New(rand.NewSource(56))
		var applied int64
		next := 0
		var res []bool
		tick := time.NewTicker(moveStreamInterval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				total <- applied
				return
			case <-tick.C:
			}
			ops = ops[:0]
			for k := 0; k < 64; k++ {
				i := next % len(rects)
				next++
				to := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.001, 0.001)
				ops = append(ops, wire.UpdateOp{
					Kind: wire.UpdateMove, Obj: rtree.ObjectID(1_000_000 + i), From: rects[i], To: to,
				})
				rects[i] = to
			}
			res = srv.ApplyUpdates(ops, res)
			applied += int64(len(res))
		}
	}()
	return total
}

func benchmarkMixedQueries(b *testing.B, withUpdates bool) {
	srv, rects, ops := benchMutableServer(b, 4096)
	r := rand.New(rand.NewSource(57))
	pool := make([]query.Query, 1024)
	for i := range pool {
		p := geom.Pt(r.Float64(), r.Float64())
		if i%2 == 0 {
			pool[i] = query.NewRange(geom.RectFromCenter(p, 0.01, 0.01))
		} else {
			pool[i] = query.NewKNN(p, 5)
		}
	}
	var stop chan struct{}
	var total <-chan int64
	if withUpdates {
		stop = make(chan struct{})
		total = runMoveStream(srv, rects, ops, stop)
	}
	var nextClient atomic.Uint32
	var cursor atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	start := nowSeconds()
	b.RunParallel(func(pb *testing.PB) {
		id := wire.ClientID(nextClient.Add(1))
		req := &wire.Request{Client: id}
		for pb.Next() {
			req.Q = pool[cursor.Add(1)%uint64(len(pool))]
			resp, _ := srv.Execute(req)
			req.Epoch = resp.Epoch // live clients track the server epoch
			srv.ReleaseResponse(resp)
		}
	})
	b.StopTimer()
	if withUpdates {
		close(stop)
		applied := <-total
		if dt := nowSeconds() - start; dt > 0 {
			b.ReportMetric(float64(applied)/dt, "moves/s")
		}
	}
}

func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// BenchmarkMixedQueryBaseline is the control: parallel queries on the
// private mutable server with no update stream.
func BenchmarkMixedQueryBaseline(b *testing.B) { benchmarkMixedQueries(b, false) }

// BenchmarkMixedQueryUnderUpdates runs the same query workload while a
// writer goroutine streams 64-move batches; the gap to the baseline is the
// total cost updates impose on readers under snapshot isolation.
func BenchmarkMixedQueryUnderUpdates(b *testing.B) { benchmarkMixedQueries(b, true) }

// BenchmarkUpdateThroughput measures the write path alone: batched moves
// through the single-writer queue, one published snapshot per batch, ns/op
// is per move.
func BenchmarkUpdateThroughput(b *testing.B) {
	srv, rects, ops := benchMutableServer(b, 4096)
	r := rand.New(rand.NewSource(58))
	var res []bool
	next := 0
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		batch := 64
		if b.N-done < batch {
			batch = b.N - done
		}
		ops = ops[:0]
		for k := 0; k < batch; k++ {
			i := next % len(rects)
			next++
			to := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.001, 0.001)
			ops = append(ops, wire.UpdateOp{
				Kind: wire.UpdateMove, Obj: rtree.ObjectID(1_000_000 + i), From: rects[i], To: to,
			})
			rects[i] = to
		}
		res = srv.ApplyUpdates(ops, res)
		for k, ok := range res {
			if !ok {
				b.Fatalf("move %d rejected", done+k)
			}
		}
		done += batch
	}
}

func BenchmarkClientWarmKNN(b *testing.B) {
	env := benchEnvironment()
	srv := server.New(env.Tree, env.DS.SizeOf, server.Config{})
	sizes := wire.DefaultSizeModel()
	cache := core.NewCache(64<<20, core.GRD3, sizes)
	cl := core.NewClient(core.ClientConfig{ID: 1, Root: srv.RootRef(), Sizes: sizes},
		cache, wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
			resp, _ := srv.Execute(req)
			return resp, nil
		}))
	// Warm the area.
	center := geom.Pt(0.5, 0.5)
	if _, err := cl.Query(query.NewRange(geom.RectFromCenter(center, 0.05, 0.05))); err != nil {
		b.Fatal(err)
	}
	if _, err := cl.Query(query.NewKNN(center, 5)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Query(query.NewKNN(center, 5)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGRD3Eviction(b *testing.B) {
	sizes := wire.DefaultSizeModel()
	srvEnv := benchEnvironment()
	srv := server.New(srvEnv.Tree, srvEnv.DS.SizeOf, server.Config{})
	transport := wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		resp, _ := srv.Execute(req)
		return resp, nil
	})
	r := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache := core.NewCache(1<<30, core.GRD3, sizes)
		cl := core.NewClient(core.ClientConfig{ID: 1, Root: srv.RootRef(), Sizes: sizes}, cache, transport)
		for j := 0; j < 20; j++ {
			p := geom.Pt(r.Float64(), r.Float64())
			if _, err := cl.Query(query.NewKNN(p, 5)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		cache.ShrinkTo(cache.Used() / 4)
	}
}

func BenchmarkEngineJoin(b *testing.B) {
	env := benchEnvironment()
	srv := server.New(env.Tree, env.DS.SizeOf, server.Config{})
	r := rand.New(rand.NewSource(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.004, 0.004)
		req := &wire.Request{Q: query.NewJoin(w, 5e-5)}
		srv.Execute(req)
	}
}

// --- Cluster routing benchmarks (PR 5) -----------------------------------
//
// BenchmarkClusterRange/KNN measure the scatter-gather router against the
// same workload at 1 and 4 shards. Range windows are tiny, so at 4 shards
// almost every query routes to a single shard — the fan-out-free fast path
// whose allocation budget (<= 2 allocs/op, enforced by
// TestClusterRouteAllocBudget in internal/cluster) scripts/bench.sh tracks
// in BENCH_<pr>.json. Fresh kNN queries probe every shard, so the 4-shard
// kNN row prices the full best-first scatter with its merge and re-issue
// protocol.

var clusterBenchServers sync.Map // int -> *ClusterServer

func benchClusterServer(b *testing.B, shards int) *ClusterServer {
	if cs, ok := clusterBenchServers.Load(shards); ok {
		return cs.(*ClusterServer)
	}
	cs, err := NewClusterServer(GenerateNE(20_000, 77), ClusterConfig{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	clusterBenchServers.Store(shards, cs)
	return cs
}

func benchmarkClusterQueries(b *testing.B, shards int, mk func(r *rand.Rand) query.Query) {
	cs := benchClusterServer(b, shards)
	handle := cs.Handler()
	r := rand.New(rand.NewSource(31))
	reqs := make([]*wire.Request, 512)
	for i := range reqs {
		reqs[i] = &wire.Request{Client: 1, Q: mk(r)}
	}
	run := func(req *wire.Request) {
		resp, err := handle(req)
		if err != nil {
			b.Fatal(err)
		}
		cs.ReleaseResponse(resp)
	}
	// One full pass pre-timer: every node the pool touches gets its lazy
	// partition tree built, so the timed loop measures steady state.
	for _, req := range reqs {
		run(req)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(reqs[i%len(reqs)])
	}
}

func BenchmarkClusterRange(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchmarkClusterQueries(b, shards, func(r *rand.Rand) query.Query {
				return query.NewRange(geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.002, 0.002))
			})
		})
	}
}

func BenchmarkClusterKNN(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchmarkClusterQueries(b, shards, func(r *rand.Rand) query.Query {
				return query.NewKNN(geom.Pt(r.Float64(), r.Float64()), 5)
			})
		})
	}
}
