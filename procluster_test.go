package repro

import (
	"net"
	"sort"
	"testing"

	"repro/internal/wire"
)

// updateReq wraps one insert into a wire-level batched update request.
func updateReq(obj Object) wire.Request {
	return wire.Request{Updates: []wire.UpdateOp{{
		Kind: wire.UpdateInsert, Obj: obj.ID, To: obj.MBR, Size: obj.Size,
	}}}
}

// TestClusterServerOverTCP drives the full facade stack: NewClusterServer
// behind a real NetServer, a pipelined binary client via Dial, and a
// proactive-caching client session — then cross-checks results against a
// single-node server over the same dataset and update history.
func TestClusterServerOverTCP(t *testing.T) {
	objects := GenerateNE(5_000, 4)
	single := NewServer(objects, ServerConfig{})
	defer single.Close()
	clustered, err := NewClusterServer(objects, ClusterConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer clustered.Close()
	if clustered.Shards() != 4 {
		t.Fatalf("Shards() = %d", clustered.Shards())
	}
	counts := clustered.ShardObjects()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(objects) {
		t.Fatalf("shard objects %v sum to %d, want %d", counts, total, len(objects))
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ns := clustered.NetServer(ServeOptions{})
	go func() { _ = ns.Serve(ln) }()
	defer ns.Close()

	transport, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	clCluster, err := NewClient(transport, ClientConfig{ID: 5, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	clSingle, err := NewClient(single.Transport(), ClientConfig{ID: 5, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	sameIDs := func(a, b []ObjectID) bool {
		if len(a) != len(b) {
			return false
		}
		as := append([]ObjectID(nil), a...)
		bs := append([]ObjectID(nil), b...)
		sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
		return true
	}

	check := func(tag string, q Query, exact bool) {
		t.Helper()
		a, err := clSingle.Query(q)
		if err != nil {
			t.Fatalf("%s: single: %v", tag, err)
		}
		b, err := clCluster.Query(q)
		if err != nil {
			t.Fatalf("%s: cluster: %v", tag, err)
		}
		if len(a.Results) != len(b.Results) {
			t.Fatalf("%s: %d results, want %d", tag, len(b.Results), len(a.Results))
		}
		// Result id sets must agree exactly for range and join; kNN keeps
		// count equality only, because the cluster client sees float32
		// wire geometry while the in-process single node keeps float64,
		// which can reorder near-tie distances.
		if exact && !sameIDs(a.Results, b.Results) {
			t.Fatalf("%s: results differ:\n single %v\ncluster %v", tag, a.Results, b.Results)
		}
	}

	for round := 0; round < 3; round++ {
		c := Pt(0.3+0.2*float64(round), 0.5)
		check("range", NewRange(RectFromCenter(c, 0.05, 0.05)), true)
		check("knn", NewKNN(c, 6), false)
		check("join", NewJoin(RectFromCenter(c, 0.1, 0.1), 0.004), true)
	}

	// Updates through the cluster endpoint: insert, query, delete, query.
	obj := Object{ID: 1 << 21, MBR: RectFromCenter(Pt(0.5, 0.5), 0.001, 0.001), Size: 128}
	req := updateReq(obj)
	resp, err := clustered.Transport().RoundTrip(&req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.UpdateResults) != 1 || !resp.UpdateResults[0] {
		t.Fatalf("cluster insert ack = %v", resp.UpdateResults)
	}

	st := clustered.ClusterStats()
	if st.Requests == 0 || st.SubQueries == 0 {
		t.Fatalf("cluster stats not accumulating: %+v", st)
	}
	if got := clustered.Stats(); got.Requests == 0 {
		t.Fatalf("serving stats not accumulating: %+v", got)
	}
}

// TestClusterServerRejectsUpdatesWhenDisabled mirrors the single-node
// read-only gate.
func TestClusterServerRejectsUpdatesWhenDisabled(t *testing.T) {
	clustered, err := NewClusterServer(GenerateNE(2_000, 1), ClusterConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer clustered.Close()
	clustered.SetRemoteUpdates(false)
	obj := Object{ID: 1 << 21, MBR: RectFromCenter(Pt(0.5, 0.5), 0.001, 0.001), Size: 64}
	req := updateReq(obj)
	if _, err := clustered.Transport().RoundTrip(&req); err == nil {
		t.Fatal("read-only cluster accepted updates")
	}
}

// TestClusterServerTooManyShards pins the empty-shard guard.
func TestClusterServerTooManyShards(t *testing.T) {
	if _, err := NewClusterServer(GenerateNE(3, 1), ClusterConfig{Shards: 16}); err == nil {
		t.Fatal("16 shards over 3 objects accepted")
	}
}
