package repro

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

func testObjects() []Object {
	return GenerateNE(3000, 11)
}

func TestFacadeEndToEnd(t *testing.T) {
	srv := NewServer(testObjects(), ServerConfig{})
	cl, err := NewClient(srv.Transport(), ClientConfig{CacheBytes: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	center := Pt(0.5, 0.5)
	rep, err := cl.Query(NewKNN(center, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	if cl.CacheUsed() == 0 || cl.CacheIndexBytes() == 0 {
		t.Error("cache did not populate")
	}
	// Second identical query is free.
	rep2, err := cl.Query(NewKNN(center, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.LocalOnly {
		t.Error("repeat query should be local")
	}
	// Cross-type reuse.
	rrep, err := cl.Query(NewRange(RectFromCenter(center, 0.02, 0.02)))
	if err != nil {
		t.Fatal(err)
	}
	_ = rrep

	jrep, err := cl.Query(NewJoin(RectFromCenter(center, 0.05, 0.05), 0.01))
	if err != nil {
		t.Fatal(err)
	}
	_ = jrep
}

func TestFacadeValidation(t *testing.T) {
	srv := NewServer(testObjects()[:100], ServerConfig{})
	if _, err := NewClient(srv.Transport(), ClientConfig{}); err == nil {
		t.Error("missing CacheBytes must error")
	}
}

func TestFacadeTCP(t *testing.T) {
	srv := NewServer(testObjects()[:500], ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.Serve(ln) }()

	tr, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(tr, ClientConfig{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Query(NewKNN(Pt(0.3, 0.3), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("tcp knn got %d results", len(rep.Results))
	}
}

// TestWireUpdatesOverTCP ships a batched update request through the full
// stack — binary codec, pipelined server, single-writer queue — and checks
// read-your-writes from a second connection, plus the read-only rejection
// path.
func TestWireUpdatesOverTCP(t *testing.T) {
	srv := NewServer(testObjects()[:500], ServerConfig{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.Serve(ln) }()

	up, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	q32 := func(v float64) float64 { return float64(float32(v)) }
	target := R(q32(0.91), q32(0.91), q32(0.915), q32(0.915))
	resp, err := up.RoundTrip(&wire.Request{Updates: []UpdateOp{
		{Kind: UpdateInsert, Obj: 77_001, To: target, Size: 512},
		{Kind: UpdateDelete, Obj: 999_999, From: R(0, 0, 0.1, 0.1)}, // a miss
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.UpdateResults) != 2 || !resp.UpdateResults[0] || resp.UpdateResults[1] {
		t.Fatalf("update results = %v", resp.UpdateResults)
	}
	if resp.Epoch != 1 {
		t.Fatalf("update ack epoch = %d", resp.Epoch)
	}

	// A different connection sees the insert immediately.
	reader, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	qresp, err := reader.RoundTrip(&wire.Request{Client: 2, Q: NewKNN(Pt(0.91, 0.91), 1), NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(qresp.Objects) != 1 || qresp.Objects[0].ID != 77_001 || qresp.Objects[0].Size != 512 {
		t.Fatalf("inserted object not served over the wire: %+v", qresp.Objects)
	}

	// Read-only mode rejects the update but keeps serving queries.
	srv.SetRemoteUpdates(false)
	if _, err := up.RoundTrip(&wire.Request{Updates: []UpdateOp{
		{Kind: UpdateDelete, Obj: 77_001, From: target},
	}}); err == nil {
		t.Fatal("read-only server accepted an update")
	}
	if _, err := reader.RoundTrip(&wire.Request{Client: 2, Q: NewKNN(Pt(0.91, 0.91), 1)}); err != nil {
		t.Fatalf("query after rejected update: %v", err)
	}
}

// oldEnvelope mirrors the gob message shape of pre-binary servers (gob
// matches struct fields by name, so the type name is irrelevant).
type oldEnvelope struct {
	Req  *wire.Request
	Resp *wire.Response
	Err  string
}

// TestDialFallsBackToGob dials a simulated pre-binary server: a gob-only
// loop that chokes on the binary preamble (gob parses it as an absurd
// message length and hangs up, exactly like an old prodb would). Dial must
// fail the binary handshake quickly and transparently redial with gob.
func TestDialFallsBackToGob(t *testing.T) {
	srv := NewServer(testObjects()[:300], ServerConfig{})
	handler := srv.Handler()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				enc := gob.NewEncoder(c)
				dec := gob.NewDecoder(c)
				for {
					var env oldEnvelope
					if dec.Decode(&env) != nil {
						return
					}
					if env.Req == nil {
						continue
					}
					resp, _ := handler(env.Req)
					if enc.Encode(oldEnvelope{Resp: resp}) != nil {
						return
					}
				}
			}(conn)
		}
	}()

	start := time.Now()
	tr, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial with gob fallback: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("fallback took %v; the poison preamble should fail the binary probe immediately", elapsed)
	}
	cl, err := NewClient(tr, ClientConfig{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Query(NewKNN(Pt(0.4, 0.4), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("fallback knn got %d results", len(rep.Results))
	}
}

func TestIndexStats(t *testing.T) {
	srv := NewServer(testObjects(), ServerConfig{})
	st := srv.IndexStats()
	if st.Objects != 3000 || st.Nodes == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGenerators(t *testing.T) {
	ne := GenerateNE(100, 1)
	rd := GenerateRD(100, 1)
	if len(ne) != 100 || len(rd) != 100 {
		t.Error("generator cardinalities")
	}
}

func TestFacadeUpdatesAndSync(t *testing.T) {
	objects := testObjects()[:800]
	srv := NewServer(objects, ServerConfig{})
	cl, err := NewClient(srv.Transport(), ClientConfig{CacheBytes: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}

	// Warm the client over an area.
	center := Pt(0.5, 0.5)
	if _, err := cl.Query(NewRange(RectFromCenter(center, 0.2, 0.2))); err != nil {
		t.Fatal(err)
	}

	// Mutate the live index.
	added := Object{ID: 5001, MBR: RectFromCenter(center, 0.001, 0.001), Size: 777}
	srv.InsertObject(added)
	if srv.Epoch() == 0 {
		t.Fatal("epoch did not advance")
	}
	if !srv.MoveObject(added.ID, RectFromCenter(Pt(0.51, 0.51), 0.001, 0.001)) {
		t.Fatal("move failed")
	}
	if srv.MoveObject(9999, RectFromCenter(center, 0.1, 0.1)) {
		t.Error("moved a ghost")
	}

	// The heartbeat prunes whatever the updates touched.
	if _, err := cl.Sync(); err != nil {
		t.Fatal(err)
	}

	// The new object is findable afterwards.
	rep, err := cl.Query(NewKNN(Pt(0.51, 0.51), 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0] != added.ID {
		t.Errorf("nearest after insert = %v, want [5001]", rep.Results)
	}

	// Deleting it makes it vanish — after the client hears about it.
	// (Purely local answers between contacts may be stale by design; the
	// heartbeat closes the window.)
	if !srv.DeleteObject(added.ID) {
		t.Fatal("delete failed")
	}
	if srv.DeleteObject(added.ID) {
		t.Error("double delete succeeded")
	}
	if _, err := cl.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err = cl.Query(NewKNN(Pt(0.51, 0.51), 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 1 && rep.Results[0] == added.ID {
		t.Error("deleted object still returned")
	}
}
